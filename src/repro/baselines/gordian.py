"""GORDIAN-L-like baseline: QP with center-of-gravity constraints.

Paper Section S4 contrasts ComPLx with the only prior primal-dual
placement optimization [Alpert et al. 1998], which was "limited to
explicit center-of-gravity (CoG) spreading constraints" as used by
GORDIAN and GORDIAN-L [Sigl, Doll, Johannes, DAC 1991].  This module
reimplements that classic scheme so the contrast is measurable:

* **partitioning**: cells are recursively quadrisected by their current
  coordinates (area-balanced splits), assigning each cell to one region
  of a 2^l x 2^l grid at level ``l``,
* **CoG constraints**: at each level the quadratic program is solved
  subject to *equality* constraints — every region's area-weighted
  center of gravity must sit at its region center.  Because the groups
  partition the cells, the constraints are enforced exactly with a
  projected Conjugate Gradient: iterates are shifted to the constraint
  manifold and search directions projected onto its null space (zero
  group means),
* **objective**: the pure quadratic (clique) model of classic GORDIAN
  by default; under CoG-only constraints the GORDIAN-L style B2B
  linearization is unstable (flyaway cells), see ``net_model``.

The scheme's known weakness — CoG constraints are "insufficient to
handle modern IC layouts" (S4): a region's CoG can be correct while its
cells still pile up — is exactly what the comparison against ComPLx's
feasibility projection exhibits.
"""

from __future__ import annotations

import time

import numpy as np

from ..core import ComPLxConfig, GlobalPlacementResult
from ..core.convergence import SelfConsistencyMonitor
from ..core.history import IterationRecord, RunHistory
from ..models.hpwl import weighted_hpwl
from ..models.quadratic import build_system
from ..netlist import Netlist, Placement
from ..projection.grid import DensityGrid, default_grid_shape


def quadrisect_groups(
    netlist: Netlist,
    placement: Placement,
    level: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assign movable cells to a ``2^l x 2^l`` grid of regions.

    Splits are area-balanced medians of the *current* placement (the
    GORDIAN recursive-partitioning step).  Returns ``(group_of_cell,
    target_x, target_y)`` where group ``-1`` marks fixed cells and the
    targets are the region centers each group's CoG is constrained to.
    """
    bounds = netlist.core.bounds
    n_side = 2 ** level
    movable = np.flatnonzero(netlist.movable)
    group = np.full(netlist.num_cells, -1, dtype=np.int64)

    # 2*level alternating binary splits (x then y per level) give the
    # full quadrisection into n_side x n_side regions.
    def split2(cells: np.ndarray, rect, depth: int) -> None:
        if cells.size == 0:
            return
        if depth == 2 * level:
            cx = rect[0] + rect[2] / 2
            cy = rect[1] + rect[3] / 2
            gx = min(int((cx - bounds.xlo) / bounds.width * n_side),
                     n_side - 1)
            gy = min(int((cy - bounds.ylo) / bounds.height * n_side),
                     n_side - 1)
            group[cells] = gx * n_side + gy
            return
        axis = placement.x if depth % 2 == 0 else placement.y
        order = cells[np.argsort(axis[cells], kind="stable")]
        areas = np.maximum(netlist.areas[order], 1e-12)
        half = np.searchsorted(np.cumsum(areas), 0.5 * areas.sum())
        half = min(max(int(half), 1), order.size - 1) if order.size > 1 else 0
        xlo, ylo, w, h = rect
        if depth % 2 == 0:
            split2(order[:half], (xlo, ylo, w / 2, h), depth + 1)
            split2(order[half:], (xlo + w / 2, ylo, w / 2, h), depth + 1)
        else:
            split2(order[:half], (xlo, ylo, w, h / 2), depth + 1)
            split2(order[half:], (xlo, ylo + h / 2, w, h / 2), depth + 1)

    split2(movable, (bounds.xlo, bounds.ylo, bounds.width, bounds.height), 0)

    cell_w = bounds.width / n_side
    cell_h = bounds.height / n_side
    count = n_side * n_side
    target_x = np.array([
        bounds.xlo + (g // n_side + 0.5) * cell_w for g in range(count)
    ])
    target_y = np.array([
        bounds.ylo + (g % n_side + 0.5) * cell_h for g in range(count)
    ])
    return group, target_x, target_y


def _group_project(v: np.ndarray, groups: np.ndarray, weights: np.ndarray,
                   num_groups: int) -> np.ndarray:
    """Project onto the null space: subtract each group's weighted mean."""
    sums = np.bincount(groups, weights=v * weights, minlength=num_groups)
    totals = np.maximum(
        np.bincount(groups, weights=weights, minlength=num_groups), 1e-300
    )
    return v - (sums / totals)[groups]


def solve_cog_constrained(
    matrix,
    rhs: np.ndarray,
    groups: np.ndarray,
    weights: np.ndarray,
    targets: np.ndarray,
    x0: np.ndarray,
    tol: float = 1e-6,
    max_iter: int = 400,
) -> np.ndarray:
    """Minimize ``x^T Q x - 2 b^T x`` s.t. per-group weighted means.

    Projected CG: start from a feasible point (``x0`` shifted so each
    group's weighted mean hits its target) and keep every search
    direction inside the null space of the constraints, so feasibility
    is preserved exactly throughout.
    """
    num_groups = int(targets.shape[0])
    x = x0.copy()
    # Shift to the constraint manifold.
    sums = np.bincount(groups, weights=x * weights, minlength=num_groups)
    totals = np.maximum(
        np.bincount(groups, weights=weights, minlength=num_groups), 1e-300
    )
    x = x + (targets - sums / totals)[groups]

    r = rhs - matrix @ x
    r = _group_project(r, groups, weights, num_groups)
    p = r.copy()
    rr = float(r @ r)
    threshold = (tol * max(np.linalg.norm(rhs), 1e-300)) ** 2
    for _ in range(max_iter):
        if rr <= threshold:
            break
        ap = matrix @ p
        pap = float(p @ ap)
        if pap <= 1e-300:
            break
        alpha = rr / pap
        x += alpha * p
        r -= alpha * ap
        r = _group_project(r, groups, weights, num_groups)
        rr_new = float(r @ r)
        p = r + (rr_new / rr) * p
        rr = rr_new
    return x


class GordianPlacer:
    """GORDIAN-L-like global placement (CoG-constrained quadratic)."""

    def __init__(
        self,
        netlist: Netlist,
        max_level: int | None = None,
        relinearizations: int = 2,
        net_model: str = "clique",
        seed: int = 0,
    ) -> None:
        self.netlist = netlist
        if max_level is None:
            # Stop when regions hold ~8 cells on average.
            max_level = max(
                int(np.ceil(0.5 * np.log2(max(netlist.num_movable, 1) / 8.0))),
                1,
            )
        self.max_level = max_level
        self.relinearizations = relinearizations
        # Classic GORDIAN minimizes a *pure quadratic* (clique) model:
        # under CoG-only constraints the B2B linearization is unstable
        # (long edges get ever-cheaper, letting single cells fly far to
        # balance a group mean).  GORDIAN-L's careful reweighting is
        # approximated by the clique model plus the level refinement.
        self.net_model = net_model
        self.seed = seed
        self._b2b_eps = max(0.5 * netlist.core.row_height, 1e-9)
        bins = default_grid_shape(netlist.num_movable)
        self.grid = DensityGrid(netlist, bins, bins)

    def place(self, initial: Placement | None = None) -> GlobalPlacementResult:
        """Run the level schedule; returns the usual result object."""
        start = time.perf_counter()
        nl = self.netlist
        bounds = nl.core.bounds
        jitter = 0.005 * min(bounds.width, bounds.height)
        current = (
            initial.copy() if initial is not None
            else nl.initial_placement(jitter=jitter, seed=self.seed)
        )
        history = RunHistory()

        # Level 0: unconstrained (one global CoG constraint is just the
        # core center; harmless) quadratic solves to seed positions.
        for _ in range(2):
            current = self._solve_level(current, level=0)

        k = 0
        for level in range(1, self.max_level + 1):
            for _ in range(self.relinearizations):
                k += 1
                t0 = time.perf_counter()
                current = self._solve_level(current, level=level)
                usage = self.grid.usage(current)
                overflow = self.grid.overflow_percent(usage, 1.0)
                phi = weighted_hpwl(nl, current)
                history.append(IterationRecord(
                    iteration=k, lam=float(level), phi_lower=phi,
                    phi_upper=phi, pi=overflow, lagrangian=phi,
                    overflow_percent=overflow, grid_bins=2**level,
                    runtime_seconds=time.perf_counter() - t0,
                ))
        history.stop_reason = "levels_exhausted"

        config = ComPLxConfig()
        return GlobalPlacementResult(
            lower=current, upper=current, history=history,
            consistency=SelfConsistencyMonitor(), config=config,
            runtime_seconds=time.perf_counter() - start,
            extras={"placer": "gordian", "levels": self.max_level},
        )

    def _solve_level(self, current: Placement, level: int) -> Placement:
        nl = self.netlist
        groups, tx, ty = quadrisect_groups(nl, current, level)
        out = current.copy()
        for axis, targets in (("x", tx), ("y", ty)):
            system = build_system(nl, current, axis, model=self.net_model,
                                  eps=self._b2b_eps)
            # Weak regularization for isolated cells.
            diag = system.matrix.diagonal()
            max_diag = float(diag.max()) if diag.size else 1.0
            bad = diag <= 1e-12 * max_diag
            if bad.any():
                center = nl.core.bounds.center[0 if axis == "x" else 1]
                system.add_anchors(
                    np.where(bad, 1e-6 * max_diag, 0.0),
                    np.full(system.size, center),
                )
            slots = system.cell_of_slot
            slot_groups = groups[slots]
            # Defensive: every movable slot must belong to a group.
            slot_groups = np.maximum(slot_groups, 0)
            weights = np.maximum(nl.areas[slots], 1e-12)
            coords = current.x if axis == "x" else current.y
            solution = solve_cog_constrained(
                system.matrix, system.rhs, slot_groups, weights, targets,
                x0=coords[slots],
            )
            target_arr = out.x if axis == "x" else out.y
            target_arr[slots] = solution
        # Clamping stray cells perturbs group means; restore feasibility
        # by shifting each group back onto its CoG target.
        out = nl.clamp_to_core(out)
        for axis, targets in (("x", tx), ("y", ty)):
            coords = out.x if axis == "x" else out.y
            movable = nl.movable
            w = np.maximum(nl.areas, 1e-12) * movable
            sums = np.bincount(np.maximum(groups, 0), weights=coords * w,
                               minlength=targets.shape[0])
            totals = np.maximum(
                np.bincount(np.maximum(groups, 0), weights=w,
                            minlength=targets.shape[0]), 1e-300)
            shift = (targets - sums / totals)[np.maximum(groups, 0)]
            coords[movable] += shift[movable]
        return nl.clamp_to_core(out)


def gordian_place(netlist: Netlist, **kwargs) -> GlobalPlacementResult:
    """Run the GORDIAN-L-like baseline on a netlist."""
    return GordianPlacer(netlist, **kwargs).place()
