"""SimPL baseline — literally a ComPLx configuration (paper Section 5).

The paper's central structural claim is that SimPL *is* a special case of
the ComPLx primal-dual framework: same B2B-linearized quadratic model,
same look-ahead legalization as the feasibility projection, but a fixed
additive pseudo-net weight ramp instead of the Pi-proportional Formula
(12), no per-macro multipliers, and a laxer stopping rule.  This module
exposes that configuration as a placer so benchmark tables can list
"SimPL" as a first-class competitor.
"""

from __future__ import annotations

from ..core import ComPLxPlacer, GlobalPlacementResult, simpl_config
from ..netlist import Netlist


class SimPLPlacer(ComPLxPlacer):
    """SimPL as the special-case instantiation of ComPLx."""

    def __init__(self, netlist: Netlist, **config_overrides) -> None:
        super().__init__(netlist, config=simpl_config(**config_overrides))


def simpl_place(netlist: Netlist, **config_overrides) -> GlobalPlacementResult:
    """Run the SimPL configuration on a netlist."""
    return SimPLPlacer(netlist, **config_overrides).place()
