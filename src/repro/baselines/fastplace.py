"""FastPlace-like baseline: quadratic placement with cell shifting.

FastPlace 3.0 [Viswanathan, Pan, Chu, ASPDAC 2007] iterates

1. a hybrid-net-model quadratic solve,
2. **cell shifting** — per band of bins, remap cell coordinates so bin
   utilization follows bin capacity (a damped 1-D equalizing transport),
3. spreading forces — each cell is anchored at its shifted location with
   a weight that ramps up linearly over iterations,

until the design is spread evenly, then relies on local refinement /
detailed placement.  This reimplementation follows that structure on our
substrate so Table 1/2-style comparisons against ComPLx have the classic
"local-shifting" placer the paper benchmarks against.
"""

from __future__ import annotations

import time

import numpy as np

from ..core import ComPLxConfig, GlobalPlacementResult
from ..core.convergence import SelfConsistencyMonitor
from ..core.history import IterationRecord, RunHistory
from ..models.hpwl import weighted_hpwl
from ..models.quadratic import build_system
from ..netlist import Netlist, Placement
from ..projection.grid import DensityGrid, default_grid_shape
from ..solvers.cg import solve_spd


class FastPlacePlacer:
    """Quadratic placement + cell shifting + ramped spreading forces."""

    def __init__(
        self,
        netlist: Netlist,
        gamma: float = 1.0,
        max_iterations: int = 100,
        damping: float = 0.8,
        weight_ramp: float = 1.2,
        stop_overflow_percent: float = 5.0,
        net_model: str = "hybrid",
        cg_tol: float = 1e-5,
        seed: int = 0,
    ) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must lie in (0, 1]")
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must lie in (0, 1]")
        self.netlist = netlist
        self.gamma = gamma
        self.max_iterations = max_iterations
        self.damping = damping
        self.weight_ramp = weight_ramp
        self.stop_overflow_percent = stop_overflow_percent
        self.net_model = net_model
        self.cg_tol = cg_tol
        self.seed = seed
        bins = default_grid_shape(netlist.num_movable)
        self.grid = DensityGrid(netlist, bins, bins)
        self._b2b_eps = max(0.5 * netlist.core.row_height, 1e-9)

    # ------------------------------------------------------------------
    def _solve(self, current: Placement, anchor: Placement | None,
               weight: float) -> Placement:
        out = current.copy()
        for axis in ("x", "y"):
            system = build_system(
                self.netlist, current, axis,
                model=self.net_model, eps=self._b2b_eps,
            )
            if anchor is not None and weight > 0:
                targets = (anchor.x if axis == "x" else anchor.y)[system.cell_of_slot]
                system.add_anchors(
                    np.full(system.size, weight), targets
                )
            diag = system.matrix.diagonal()
            max_diag = float(diag.max()) if diag.size else 0.0
            bad = diag <= 1e-12 * max(max_diag, 1e-300)
            if bad.any() or max_diag <= 0:
                center = self.netlist.core.bounds.center[0 if axis == "x" else 1]
                weak = np.where(bad, max(1e-6 * max_diag, 1e-6), 0.0)
                system.add_anchors(weak, np.full(system.size, center))
            coords = current.x if axis == "x" else current.y
            sol = solve_spd(system.matrix, system.rhs,
                            x0=coords[system.cell_of_slot], tol=self.cg_tol)
            target = out.x if axis == "x" else out.y
            target[system.cell_of_slot] = sol.x
        return self.netlist.clamp_to_core(out)

    # ------------------------------------------------------------------
    def _shift_axis(self, placement: Placement, axis: str) -> Placement:
        """Damped 1-D equalizing transport of cells per bin band."""
        nl = self.netlist
        grid = self.grid
        out = placement.copy()
        usage = grid.usage(placement)
        cap = np.maximum(self.gamma * grid.capacity, 1e-12)
        movable = np.flatnonzero(nl.movable)
        if axis == "x":
            # Bands are rows of bins (fixed y); cells move along x.
            coords = out.x
            band_of = np.clip(
                ((placement.y[movable] - grid.bounds.ylo) / grid.bin_h).astype(int),
                0, grid.ny - 1,
            )
            lo, width, nbins, nbands = grid.bounds.xlo, grid.bin_w, grid.nx, grid.ny
            profile = lambda band: (usage[:, band], cap[:, band])
        else:
            # Bands are columns of bins (fixed x); cells move along y.
            coords = out.y
            band_of = np.clip(
                ((placement.x[movable] - grid.bounds.xlo) / grid.bin_w).astype(int),
                0, grid.nx - 1,
            )
            lo, width, nbins, nbands = grid.bounds.ylo, grid.bin_h, grid.ny, grid.nx
            profile = lambda band: (usage[band, :], cap[band, :])

        boundaries = lo + width * np.arange(nbins + 1)
        for band in range(nbands):
            cells = movable[band_of == band]
            if cells.size == 0:
                continue
            u, c = profile(band)
            total_u = float(u.sum())
            if total_u <= 1e-12:
                continue
            cum_u = np.concatenate([[0.0], np.cumsum(u)]) / total_u
            cum_c = np.concatenate([[0.0], np.cumsum(c)]) / float(c.sum())
            # Where does each cell sit in cumulative usage?  Then map to
            # the location with the same cumulative capacity.
            t = np.interp(coords[cells], boundaries, cum_u)
            new = np.interp(t, cum_c, boundaries)
            coords[cells] = coords[cells] + self.damping * (new - coords[cells])
        return out

    def _shift(self, placement: Placement, sweeps: int = 1) -> Placement:
        """Alternate x/y equalizing passes (usage recomputed each pass)."""
        shifted = placement
        for _ in range(sweeps):
            shifted = self._shift_axis(shifted, "x")
            shifted = self._shift_axis(shifted, "y")
        return self.netlist.clamp_to_core(shifted)

    # ------------------------------------------------------------------
    def place(self, initial: Placement | None = None) -> GlobalPlacementResult:
        """Run cell-shifting global placement to the spread target."""
        start = time.perf_counter()
        nl = self.netlist
        bounds = nl.core.bounds
        jitter = 0.005 * min(bounds.width, bounds.height)
        current = (
            initial.copy() if initial is not None
            else nl.initial_placement(jitter=jitter, seed=self.seed)
        )
        for _ in range(3):
            current = self._solve(current, anchor=None, weight=0.0)

        history = RunHistory()
        shifted = current
        base_weight: float | None = None
        for k in range(1, self.max_iterations + 1):
            t0 = time.perf_counter()
            shifted = self._shift(current)
            pi = float(
                (np.abs(shifted.x - current.x) + np.abs(shifted.y - current.y))
                [nl.movable].sum()
            )
            # Spread is judged on the QP iterate itself: FastPlace keeps
            # iterating until quadratic placement alone is even enough.
            usage = self.grid.usage(current)
            overflow = self.grid.overflow_percent(usage, self.gamma)
            phi_lb = weighted_hpwl(nl, current)
            phi_ub = weighted_hpwl(nl, shifted)
            if base_weight is None:
                # Seed the ramp at the same relative magnitude ComPLx
                # uses for lambda_1, expressed as an anchor weight.
                base_weight = self.weight_ramp * phi_lb / (100.0 * max(pi, 1e-9))
            weight = base_weight * k
            history.append(IterationRecord(
                iteration=k, lam=weight, phi_lower=phi_lb, phi_upper=phi_ub,
                pi=pi, lagrangian=phi_lb + weight * pi,
                overflow_percent=overflow, grid_bins=self.grid.nx,
                runtime_seconds=time.perf_counter() - t0,
            ))
            if overflow <= self.stop_overflow_percent:
                history.stop_reason = "spread"
                break
            current = self._solve(current, anchor=shifted, weight=weight)
        else:
            history.stop_reason = "max_iterations"

        config = ComPLxConfig(gamma=self.gamma)
        # FastPlace's deliverable is the spread QP iterate itself (it is
        # already even enough for detailed placement); the last shifted
        # placement is only the internal force target.
        return GlobalPlacementResult(
            lower=current, upper=current, history=history,
            consistency=SelfConsistencyMonitor(), config=config,
            runtime_seconds=time.perf_counter() - start,
            extras={"placer": "fastplace"},
        )


def fastplace_place(netlist: Netlist, **kwargs) -> GlobalPlacementResult:
    """Run the FastPlace-like baseline on a netlist."""
    return FastPlacePlacer(netlist, **kwargs).place()
