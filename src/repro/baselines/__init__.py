"""Baseline placers the paper compares against, reimplemented from their
publications: SimPL (a ComPLx special case), RQL-like relaxed quadratic
spreading, FastPlace-like cell shifting, and an NTUPlace/mPL-like
nonlinear penalty placer."""

from .fastplace import FastPlacePlacer, fastplace_place
from .gordian import GordianPlacer, gordian_place, quadrisect_groups, solve_cog_constrained
from .nonlinear import NonlinearPlacer, SmoothDensity, nonlinear_place
from .rql import RQLPlacer, rql_config, rql_place
from .simpl import SimPLPlacer, simpl_place

__all__ = [
    "FastPlacePlacer",
    "GordianPlacer",
    "gordian_place",
    "quadrisect_groups",
    "solve_cog_constrained",
    "NonlinearPlacer",
    "RQLPlacer",
    "SimPLPlacer",
    "SmoothDensity",
    "fastplace_place",
    "nonlinear_place",
    "rql_config",
    "rql_place",
    "simpl_place",
]
