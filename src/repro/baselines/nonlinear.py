"""NTUPlace/mPL-like baseline: nonconvex penalty-based analytical placer.

The placers the paper contrasts ComPLx against in Section 7 ("analytical
placement based on nonconvex optimization [20, 9, 12]") minimize

    LSE_wirelength(x, y) + mu * density_penalty(x, y)

with a smooth density model and a penalty weight ``mu`` annealed upward,
by nonlinear Conjugate Gradient.  This module implements that recipe:

* log-sum-exp wirelength (Section S1) with analytic gradients,
* a differentiable bin-density model: each movable cell deposits its
  area onto the four surrounding bins with bilinear weights; the penalty
  is ``sum_b max(0, u_b - gamma c_b)^2`` with gradients flowing through
  the bilinear weights,
* an outer loop that multiplies ``mu`` until the overflow target is met.

It is deliberately *not* multilevel (mPL6's speed trick); measured
against ComPLx it exhibits the paper's qualitative result: comparable
HPWL at distinctly higher runtime.
"""

from __future__ import annotations

import time

import numpy as np

from ..core import ComPLxConfig, GlobalPlacementResult
from ..core.convergence import SelfConsistencyMonitor
from ..core.history import IterationRecord, RunHistory
from ..models.hpwl import weighted_hpwl
from ..models.logsumexp import default_gamma, lse_wirelength
from ..netlist import Netlist, Placement
from ..projection.grid import DensityGrid, default_grid_shape
from ..solvers.nonlinear_cg import minimize_nlcg


class SmoothDensity:
    """Differentiable bilinear bin-density model over a grid."""

    def __init__(self, netlist: Netlist, grid: DensityGrid, gamma: float):
        self.netlist = netlist
        self.grid = grid
        self.gamma = gamma
        self.capacity = gamma * grid.capacity
        self.movable = np.flatnonzero(netlist.movable)
        # Each movable cell deposits area through one or more sample
        # points.  A single point is fine for standard cells, but a
        # macro spanning several bins must be sampled across its outline
        # or its whole area lands in one bin pair (with explosive,
        # useless gradients).
        offsets_x: list[float] = []
        offsets_y: list[float] = []
        owner: list[int] = []
        sample_area: list[float] = []
        for slot, cell in enumerate(self.movable):
            cw = float(netlist.widths[cell])
            ch = float(netlist.heights[cell])
            nx = max(1, int(np.ceil(cw / max(grid.bin_w, 1e-12))))
            ny = max(1, int(np.ceil(ch / max(grid.bin_h, 1e-12))))
            share = (cw * ch) / (nx * ny)
            for i in range(nx):
                for j in range(ny):
                    offsets_x.append((i + 0.5) / nx * cw - 0.5 * cw)
                    offsets_y.append((j + 0.5) / ny * ch - 0.5 * ch)
                    owner.append(slot)
                    sample_area.append(share)
        self._off_x = np.array(offsets_x)
        self._off_y = np.array(offsets_y)
        self._owner = np.array(owner, dtype=np.int64)
        self.area = np.array(sample_area)

    def value_and_grad(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Penalty sum_b max(0, u_b - cap_b)^2 and d/d(x,y) of movables.

        ``x``/``y`` are per movable *slot*; the computation runs over the
        (possibly more numerous) sample points and gradients accumulate
        back onto their owning slots.
        """
        g = self.grid
        sx = x[self._owner] + self._off_x
        sy = y[self._owner] + self._off_y
        fx = np.clip((sx - g.bounds.xlo) / g.bin_w - 0.5, 0.0, g.nx - 1.0)
        fy = np.clip((sy - g.bounds.ylo) / g.bin_h - 0.5, 0.0, g.ny - 1.0)
        ix = np.minimum(fx.astype(int), g.nx - 2) if g.nx > 1 else np.zeros_like(fx, int)
        iy = np.minimum(fy.astype(int), g.ny - 2) if g.ny > 1 else np.zeros_like(fy, int)
        tx = fx - ix
        ty = fy - iy

        usage = np.zeros((g.nx, g.ny))
        corners = (
            (0, 0, (1 - tx) * (1 - ty)), (1, 0, tx * (1 - ty)),
            (0, 1, (1 - tx) * ty), (1, 1, tx * ty),
        )
        for dx, dy, w in corners:
            np.add.at(
                usage,
                (np.minimum(ix + dx, g.nx - 1), np.minimum(iy + dy, g.ny - 1)),
                w * self.area,
            )
        excess = np.clip(usage - self.capacity, 0.0, None)
        value = float((excess**2).sum())

        # Gradient: d value/d u_b = 2*excess_b; chain through bilinear
        # weights.  d w/d tx and tx's dependence on x give 1/bin_w terms.
        sample_gx = np.zeros_like(sx)
        sample_gy = np.zeros_like(sy)
        e = 2.0 * excess
        for dx, dy, _ in corners:
            bx = np.minimum(ix + dx, g.nx - 1)
            by = np.minimum(iy + dy, g.ny - 1)
            eb = e[bx, by]
            sign_x = (1.0 if dx == 1 else -1.0)
            sign_y = (1.0 if dy == 1 else -1.0)
            wx = (ty if dy == 1 else (1 - ty))
            wy = (tx if dx == 1 else (1 - tx))
            sample_gx += eb * self.area * sign_x * wx / g.bin_w
            sample_gy += eb * self.area * sign_y * wy / g.bin_h
        grad_x = np.bincount(self._owner, weights=sample_gx,
                             minlength=x.shape[0])
        grad_y = np.bincount(self._owner, weights=sample_gy,
                             minlength=y.shape[0])
        return value, grad_x, grad_y


class NonlinearPlacer:
    """LSE wirelength + annealed smooth-density penalty via NLCG."""

    def __init__(
        self,
        netlist: Netlist,
        gamma: float = 1.0,
        max_outer: int = 30,
        inner_iterations: int = 40,
        mu_growth: float = 2.0,
        stop_overflow_percent: float = 6.0,
        lse_gamma_fraction: float = 0.02,
        seed: int = 0,
    ) -> None:
        self.netlist = netlist
        self.gamma = gamma
        self.max_outer = max_outer
        self.inner_iterations = inner_iterations
        self.mu_growth = mu_growth
        self.stop_overflow_percent = stop_overflow_percent
        self.lse_gamma_fraction = lse_gamma_fraction
        self.seed = seed
        bins = default_grid_shape(netlist.num_movable)
        self.grid = DensityGrid(netlist, bins, bins)
        self.density = SmoothDensity(netlist, self.grid, gamma)

    def place(self, initial: Placement | None = None) -> GlobalPlacementResult:
        """Run penalty-annealed nonlinear placement to the spread target."""
        start = time.perf_counter()
        nl = self.netlist
        bounds = nl.core.bounds
        jitter = 0.02 * min(bounds.width, bounds.height)
        current = (
            initial.copy() if initial is not None
            else nl.initial_placement(jitter=jitter, seed=self.seed)
        )
        movable = self.density.movable
        n = movable.shape[0]
        lse_gamma = default_gamma(nl, self.lse_gamma_fraction)

        def objective(z: np.ndarray, mu: float) -> tuple[float, np.ndarray]:
            trial = current.copy()
            trial.x[movable] = z[:n]
            trial.y[movable] = z[n:]
            wl = lse_wirelength(nl, trial, lse_gamma)
            dval, dgx, dgy = self.density.value_and_grad(
                trial.x[movable], trial.y[movable]
            )
            value = wl.value + mu * dval
            grad = np.concatenate([
                wl.grad_x[movable] + mu * dgx,
                wl.grad_y[movable] + mu * dgy,
            ])
            return value, grad

        history = RunHistory()
        mu = None
        for k in range(1, self.max_outer + 1):
            t0 = time.perf_counter()
            z0 = np.concatenate([current.x[movable], current.y[movable]])
            if mu is None:
                # Balance initial gradient magnitudes (the NTUPlace rule).
                wl = lse_wirelength(nl, current, lse_gamma)
                _, dgx, dgy = self.density.value_and_grad(
                    current.x[movable], current.y[movable]
                )
                wl_norm = float(np.linalg.norm(
                    np.concatenate([wl.grad_x[movable], wl.grad_y[movable]])
                ))
                d_norm = float(np.linalg.norm(np.concatenate([dgx, dgy])))
                mu = 0.1 * wl_norm / max(d_norm, 1e-12)
            result = minimize_nlcg(
                lambda z: objective(z, mu), z0,
                max_iter=self.inner_iterations, grad_tol=1e-7 * max(n, 1),
            )
            current.x[movable] = result.x[:n]
            current.y[movable] = result.x[n:]
            current = nl.clamp_to_core(current)

            usage = self.grid.usage(current)
            overflow = self.grid.overflow_percent(usage, self.gamma)
            phi = weighted_hpwl(nl, current)
            history.append(IterationRecord(
                iteration=k, lam=mu, phi_lower=phi, phi_upper=phi,
                pi=overflow, lagrangian=result.value,
                overflow_percent=overflow, grid_bins=self.grid.nx,
                runtime_seconds=time.perf_counter() - t0,
            ))
            if overflow <= self.stop_overflow_percent:
                history.stop_reason = "spread"
                break
            # Plateau detection: huge mu cannot fix sub-bin overflow, so
            # stop once three outer rounds stop improving materially.
            if k >= 4:
                past = history.records[-4].overflow_percent
                if past - overflow < 0.02 * past:
                    history.stop_reason = "plateau"
                    break
            mu *= self.mu_growth
        else:
            history.stop_reason = "max_iterations"

        config = ComPLxConfig(gamma=self.gamma, net_model="lse")
        return GlobalPlacementResult(
            lower=current, upper=current, history=history,
            consistency=SelfConsistencyMonitor(), config=config,
            runtime_seconds=time.perf_counter() - start,
            extras={"placer": "nonlinear"},
        )


def nonlinear_place(netlist: Netlist, **kwargs) -> GlobalPlacementResult:
    """Run the NTUPlace-like nonlinear baseline on a netlist."""
    return NonlinearPlacer(netlist, **kwargs).place()
