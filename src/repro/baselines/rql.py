"""RQL-like baseline: relaxed quadratic spreading with force thresholding.

RQL [Viswanathan et al., DAC 2007] spreads cells with quadratic
placement plus per-cell spreading forces whose magnitude is *clamped* —
the "ad hoc thresholding" the ComPLx paper contrasts with its
distance-modulated subgradients (Section 3: "the force modulation
problem was articulated in [33], but addressed there with ad hoc
thresholding").

We model this faithfully inside the same machinery: the anchor pull per
cell is capped at a fixed quantile of the anchor-force distribution, so
far-from-legal cells receive a *relaxed* (uniformly bounded) force
instead of one proportional to their violation.  Everything else (B2B
model, projection as the density oracle, additive weight ramp) matches
the common quadratic-spreading structure.
"""

from __future__ import annotations

import numpy as np

from ..core import ComPLxConfig, ComPLxPlacer, GlobalPlacementResult
from ..core.anchors import anchor_weights
from ..netlist import Netlist, Placement


def rql_config(**overrides) -> ComPLxConfig:
    """Relaxed-spreading defaults: fixed additive ramp, lax stopping."""
    base = dict(
        lambda_mode="simpl",
        lambda_h_factor=12.0,
        per_macro_lambda=False,
        gap_tol=0.10,
    )
    base.update(overrides)
    return ComPLxConfig(**base)


class RQLPlacer(ComPLxPlacer):
    """Quadratic spreading with clamped (relaxed) anchor forces."""

    def __init__(
        self,
        netlist: Netlist,
        config: ComPLxConfig | None = None,
        force_cap_quantile: float = 0.75,
        **kwargs,
    ) -> None:
        super().__init__(netlist, config=config or rql_config(), **kwargs)
        if not 0.0 < force_cap_quantile <= 1.0:
            raise ValueError("force_cap_quantile must lie in (0, 1]")
        self.force_cap_quantile = force_cap_quantile

    def _add_anchors(self, system, current: Placement, anchor: Placement,
                     lam: float, axis: str) -> None:
        cells = system.cell_of_slot
        if axis == "x":
            cur, tgt = current.x[cells], anchor.x[cells]
        else:
            cur, tgt = current.y[cells], anchor.y[cells]
        scale = self._anchor_scale[cells]
        weights = anchor_weights(cur, tgt, lam, self._anchor_eps, scale)
        # RQL-style thresholding: the *force* w*|d| a cell receives is
        # clamped at a quantile of the force distribution, relaxing the
        # pull on the worst offenders.
        force = weights * np.abs(cur - tgt)
        positive = force[force > 0]
        if positive.size:
            cap = float(np.quantile(positive, self.force_cap_quantile))
            over = force > cap
            with np.errstate(divide="ignore", invalid="ignore"):
                weights = np.where(
                    over, cap / np.maximum(np.abs(cur - tgt), 1e-12), weights
                )
        system.add_anchors(weights, tgt)


def rql_place(netlist: Netlist, **kwargs) -> GlobalPlacementResult:
    """Run the RQL-like baseline on a netlist."""
    return RQLPlacer(netlist, **kwargs).place()
