"""Cell kinds and lightweight per-cell views.

The :class:`~repro.netlist.netlist.Netlist` stores all cell attributes in
flat numpy arrays for speed; :class:`CellView` offers a friendly object
facade over one index for debugging, examples and tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

__all__ = [
    "CellKind",
    "CellView",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .netlist import Netlist


class CellKind(enum.IntEnum):
    """Classification of placeable objects.

    * ``STANDARD`` — row-aligned standard cell.
    * ``MACRO`` — large block; may be movable (ISPD 2006) or fixed (2005).
    * ``TERMINAL`` — fixed I/O pad or pre-placed blockage; never moves.
    """

    STANDARD = 0
    MACRO = 1
    TERMINAL = 2


@dataclass(frozen=True)
class CellView:
    """Read-only view of a single cell inside a netlist."""

    netlist: "Netlist"
    index: int

    @property
    def name(self) -> str:
        return self.netlist.cell_names[self.index]

    @property
    def width(self) -> float:
        return float(self.netlist.widths[self.index])

    @property
    def height(self) -> float:
        return float(self.netlist.heights[self.index])

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def kind(self) -> CellKind:
        return CellKind(int(self.netlist.kinds[self.index]))

    @property
    def movable(self) -> bool:
        return bool(self.netlist.movable[self.index])

    @property
    def nets(self) -> list[int]:
        """Indices of nets incident to this cell."""
        return self.netlist.nets_of_cell(self.index)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        tag = "movable" if self.movable else "fixed"
        return (
            f"CellView({self.name!r}, {self.kind.name.lower()}, {tag}, "
            f"{self.width:g}x{self.height:g})"
        )
