"""Placement rows and the core (placeable) area.

ISPD Bookshelf ``.scl`` files describe the core as a stack of horizontal
rows of sites.  ComPLx only needs row geometry for (a) the pseudo-net
``epsilon`` (1.5x row height, Section 5 of the paper), (b) legalization and
(c) density-grid sizing, so we keep a simple uniform-row model with
optional per-row horizontal extents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .geometry import Rect

__all__ = [
    "CoreArea",
    "Row",
]


@dataclass(frozen=True)
class Row:
    """One standard-cell row: a horizontal strip of placement sites."""

    y: float            # bottom edge
    height: float
    x: float            # left edge of the first site
    site_width: float
    num_sites: int

    @property
    def x_end(self) -> float:
        return self.x + self.site_width * self.num_sites

    @property
    def rect(self) -> Rect:
        return Rect(self.x, self.y, self.x_end, self.y + self.height)


@dataclass
class CoreArea:
    """The placeable region of the die: a list of uniform rows.

    ``rows`` are sorted bottom-to-top.  ``bounds`` is the bounding box of
    all rows; global placement constrains cell centers to it.
    """

    rows: list[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValueError("CoreArea requires at least one row")
        self.rows = sorted(self.rows, key=lambda r: r.y)
        heights = {r.height for r in self.rows}
        if len(heights) > 1:
            raise ValueError(f"non-uniform row heights unsupported: {heights}")

    @property
    def row_height(self) -> float:
        return self.rows[0].height

    @property
    def bounds(self) -> Rect:
        xlo = min(r.x for r in self.rows)
        xhi = max(r.x_end for r in self.rows)
        ylo = self.rows[0].y
        yhi = self.rows[-1].y + self.rows[-1].height
        return Rect(xlo, ylo, xhi, yhi)

    @property
    def site_width(self) -> float:
        return self.rows[0].site_width

    def row_index_of(self, y_center: float) -> int:
        """Index of the row whose vertical span is nearest to ``y_center``.

        Assumes uniform contiguous rows; clamps out-of-core coordinates.
        """
        ylo = self.rows[0].y
        idx = int((y_center - ylo) / self.row_height)
        return min(max(idx, 0), len(self.rows) - 1)

    @classmethod
    def uniform(
        cls,
        bounds: Rect,
        row_height: float,
        site_width: float = 1.0,
    ) -> "CoreArea":
        """Build a core that tiles ``bounds`` with uniform rows."""
        if row_height <= 0 or site_width <= 0:
            raise ValueError("row_height and site_width must be positive")
        num_rows = max(1, int(bounds.height / row_height))
        num_sites = max(1, int(bounds.width / site_width))
        rows = [
            Row(
                y=bounds.ylo + i * row_height,
                height=row_height,
                x=bounds.xlo,
                site_width=site_width,
                num_sites=num_sites,
            )
            for i in range(num_rows)
        ]
        return cls(rows=rows)
