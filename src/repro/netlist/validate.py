"""Semantic checks on netlists and placements beyond structural validation.

:func:`Netlist.validate_structure` (run at construction) guarantees the
arrays are mutually consistent; the checks here are about placement
*quality*: legality with respect to the core, overlap-freedom, and
connectivity sanity.  They are used by tests and by the legalizers to
certify their output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .netlist import Netlist, Placement

__all__ = [
    "LegalityReport",
    "check_legal",
    "find_overlaps",
    "total_overlap_area",
]


@dataclass
class LegalityReport:
    """Outcome of :func:`check_legal`."""

    out_of_core: list[int] = field(default_factory=list)
    off_row: list[int] = field(default_factory=list)
    off_site: list[int] = field(default_factory=list)
    overlaps: list[tuple[int, int]] = field(default_factory=list)
    region_violations: list[int] = field(default_factory=list)

    @property
    def legal(self) -> bool:
        return not (
            self.out_of_core or self.off_row or self.off_site
            or self.overlaps or self.region_violations
        )

    def summary(self) -> str:
        return (
            f"out_of_core={len(self.out_of_core)} off_row={len(self.off_row)} "
            f"off_site={len(self.off_site)} overlaps={len(self.overlaps)} "
            f"region={len(self.region_violations)}"
        )


def check_legal(
    netlist: Netlist,
    placement: Placement,
    tol: float = 1e-6,
    check_sites: bool = False,
    max_reported: int = 100,
) -> LegalityReport:
    """Check row alignment, core containment and overlap-freedom.

    Only movable cells are checked (fixed objects are taken as given).
    Overlap detection is done with a sweep over row-sorted intervals, so it
    is near-linear for legal placements.
    """
    report = LegalityReport()
    core = netlist.core
    bounds = core.bounds
    row_h = core.row_height

    movable = np.flatnonzero(netlist.movable)
    x = placement.x
    y = placement.y
    half_w = 0.5 * netlist.widths
    half_h = 0.5 * netlist.heights

    for i in movable:
        if (
            x[i] - half_w[i] < bounds.xlo - tol
            or x[i] + half_w[i] > bounds.xhi + tol
            or y[i] - half_h[i] < bounds.ylo - tol
            or y[i] + half_h[i] > bounds.yhi + tol
        ):
            report.out_of_core.append(int(i))
            if len(report.out_of_core) >= max_reported:
                break

    # Row alignment: bottom edge of each movable standard cell must sit on
    # a row boundary.
    std = movable[~netlist.is_macro[movable]]
    bottoms = y[std] - half_h[std]
    offsets = (bottoms - bounds.ylo) / row_h
    misaligned = np.abs(offsets - np.round(offsets)) > tol / row_h + 1e-9
    report.off_row = [int(i) for i in std[misaligned][:max_reported]]

    if check_sites:
        site_w = core.site_width
        lefts = x[std] - half_w[std]
        s_off = (lefts - bounds.xlo) / site_w
        off_site = np.abs(s_off - np.round(s_off)) > tol / site_w + 1e-9
        report.off_site = [int(i) for i in std[off_site][:max_reported]]

    report.overlaps = find_overlaps(netlist, placement, tol=tol,
                                    max_reported=max_reported)

    for region in netlist.regions:
        for i in region.cells:
            if not netlist.movable[i]:
                continue
            if not region.rect.contains_point(x[i], y[i], tol=tol):
                report.region_violations.append(int(i))

    return report


def find_overlaps(
    netlist: Netlist,
    placement: Placement,
    tol: float = 1e-6,
    max_reported: int = 100,
) -> list[tuple[int, int]]:
    """All pairs of movable cells whose rectangles overlap by more than tol.

    Uses an interval sweep along x with candidates bucketed by row band, so
    the cost is ``O(n log n + k)`` for k overlaps on realistic placements.
    """
    movable = np.flatnonzero(netlist.movable & (netlist.areas > 0))
    if movable.size == 0:
        return []
    x = placement.x[movable]
    y = placement.y[movable]
    hw = 0.5 * netlist.widths[movable]
    hh = 0.5 * netlist.heights[movable]
    order = np.argsort(x - hw, kind="stable")
    overlaps: list[tuple[int, int]] = []
    active: list[int] = []
    for oi in order:
        xlo_i = x[oi] - hw[oi]
        active = [
            oj for oj in active if x[oj] + hw[oj] > xlo_i + tol
        ]
        for oj in active:
            if (
                abs(y[oi] - y[oj]) < hh[oi] + hh[oj] - tol
                and abs(x[oi] - x[oj]) < hw[oi] + hw[oj] - tol
            ):
                a, b = int(movable[oi]), int(movable[oj])
                overlaps.append((min(a, b), max(a, b)))
                if len(overlaps) >= max_reported:
                    return overlaps
        active.append(oi)
    return overlaps


def total_overlap_area(netlist: Netlist, placement: Placement) -> float:
    """Sum of pairwise overlap areas among movable cells (brute force is
    avoided via the same sweep as :func:`find_overlaps`)."""
    movable = np.flatnonzero(netlist.movable & (netlist.areas > 0))
    if movable.size == 0:
        return 0.0
    x = placement.x[movable]
    y = placement.y[movable]
    hw = 0.5 * netlist.widths[movable]
    hh = 0.5 * netlist.heights[movable]
    order = np.argsort(x - hw, kind="stable")
    total = 0.0
    active: list[int] = []
    for oi in order:
        xlo_i = x[oi] - hw[oi]
        active = [oj for oj in active if x[oj] + hw[oj] > xlo_i]
        for oj in active:
            dx = min(x[oi] + hw[oi], x[oj] + hw[oj]) - max(
                x[oi] - hw[oi], x[oj] - hw[oj]
            )
            dy = min(y[oi] + hh[oi], y[oj] + hh[oj]) - max(
                y[oi] - hh[oi], y[oj] - hh[oj]
            )
            if dx > 0 and dy > 0:
                total += dx * dy
        active.append(oi)
    return total
