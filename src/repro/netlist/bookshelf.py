"""Reader/writer for the ISPD Bookshelf placement format.

The ISPD 2005/2006 contests distribute designs as a ``.aux`` file naming
five companions:

* ``.nodes`` — cell dimensions, ``terminal`` tags,
* ``.nets``  — hyperedges with per-pin center offsets,
* ``.wts``   — optional net weights,
* ``.pl``    — locations (lower-left corners) and ``/FIXED`` tags,
* ``.scl``   — core rows.

Internally the placer uses *center* coordinates; this module converts on
the way in and out.  A node is classified as a macro when it is taller
than one row; macros are movable unless fixed in the ``.pl`` file (the
ISPD 2006 convention).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from .cells import CellKind
from .netlist import Netlist, Placement
from .rows import CoreArea, Row

__all__ = [
    "BookshelfError",
    "BookshelfParseError",
    "read_aux",
    "write_aux",
]


class BookshelfError(ValueError):
    """Raised on malformed Bookshelf input."""


class BookshelfParseError(BookshelfError):
    """Malformed Bookshelf input, located to a file and line.

    ``path`` and ``line`` (1-based, ``None`` for file-level problems)
    are attributes so callers — the CLI in particular — can render a
    compiler-style ``file:line: message`` diagnostic.
    """

    def __init__(self, path: str, message: str,
                 line: int | None = None) -> None:
        self.path = path
        self.line = line
        location = f"{path}:{line}" if line is not None else path
        super().__init__(f"{location}: {message}")


def _content_lines(path: str) -> list[tuple[int, str]]:
    """``(1-based line number, text)`` pairs with comments and blank
    lines stripped (keeps the header line)."""
    out = []
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if line:
                out.append((lineno, line))
    return out


def _header_value(path: str, lineno: int, line: str, key: str) -> int:
    """Parse ``Key : value`` headers such as ``NumNodes : 42``."""
    left, _, right = line.partition(":")
    if left.strip() != key:
        raise BookshelfParseError(
            path, f"expected {key!r} header, got {line!r}", line=lineno
        )
    try:
        return int(right.strip())
    except ValueError:
        raise BookshelfParseError(
            path, f"non-integer {key} value {right.strip()!r}", line=lineno
        ) from None


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------

@dataclass
class _RawNode:
    width: float
    height: float
    terminal: bool


def _read_nodes(path: str) -> dict[str, _RawNode]:
    lines = _content_lines(path)
    if not lines or not lines[0][1].startswith("UCLA nodes"):
        raise BookshelfParseError(path, "missing 'UCLA nodes' header", line=1)
    nodes: dict[str, _RawNode] = {}
    num_nodes = num_terminals = None
    for lineno, line in lines[1:]:
        if line.startswith("NumNodes"):
            num_nodes = _header_value(path, lineno, line, "NumNodes")
            continue
        if line.startswith("NumTerminals"):
            num_terminals = _header_value(path, lineno, line, "NumTerminals")
            continue
        parts = line.split()
        if len(parts) < 3:
            raise BookshelfParseError(
                path, f"bad node line {line!r}", line=lineno
            )
        try:
            name, width, height = parts[0], float(parts[1]), float(parts[2])
        except ValueError:
            raise BookshelfParseError(
                path, f"non-numeric node dimensions in {line!r}", line=lineno
            ) from None
        terminal = len(parts) > 3 and parts[3].lower().startswith("terminal")
        if name in nodes:
            raise BookshelfParseError(
                path, f"duplicate node {name!r}", line=lineno
            )
        nodes[name] = _RawNode(width, height, terminal)
    if num_nodes is not None and len(nodes) != num_nodes:
        raise BookshelfParseError(
            path, f"NumNodes={num_nodes} but {len(nodes)} nodes parsed"
        )
    if num_terminals is not None:
        found = sum(1 for n in nodes.values() if n.terminal)
        if found != num_terminals:
            raise BookshelfParseError(
                path, f"NumTerminals={num_terminals} but {found} parsed"
            )
    return nodes


def _read_nets(path: str) -> list[tuple[str, list[tuple[str, str, float, float]]]]:
    """Returns ``[(net name, [(cell, direction, dx, dy), ...]), ...]``."""
    lines = _content_lines(path)
    if not lines or not lines[0][1].startswith("UCLA nets"):
        raise BookshelfParseError(path, "missing 'UCLA nets' header", line=1)
    nets: list[tuple[str, list[tuple[str, str, float, float]]]] = []
    i = 1
    while i < len(lines):
        lineno, line = lines[i]
        if line.startswith(("NumNets", "NumPins")):
            i += 1
            continue
        if not line.startswith("NetDegree"):
            raise BookshelfParseError(
                path, f"expected NetDegree, got {line!r}", line=lineno
            )
        _, _, rest = line.partition(":")
        parts = rest.split()
        try:
            degree = int(parts[0])
        except (IndexError, ValueError):
            raise BookshelfParseError(
                path, f"bad NetDegree line {line!r}", line=lineno
            ) from None
        net_name = parts[1] if len(parts) > 1 else f"n{len(nets)}"
        pins: list[tuple[str, str, float, float]] = []
        i += 1
        for _ in range(degree):
            if i >= len(lines):
                raise BookshelfParseError(
                    path,
                    f"net {net_name!r} declares {degree} pins but the "
                    "file ends early", line=lineno,
                )
            pin_lineno, pin_line = lines[i]
            pin_parts = pin_line.split()
            cell = pin_parts[0]
            direction = pin_parts[1] if len(pin_parts) > 1 and pin_parts[1] != ":" else "B"
            dx = dy = 0.0
            if ":" in pin_parts:
                colon = pin_parts.index(":")
                coords = pin_parts[colon + 1:]
                if len(coords) >= 2:
                    try:
                        dx, dy = float(coords[0]), float(coords[1])
                    except ValueError:
                        raise BookshelfParseError(
                            path, f"non-numeric pin offset in {pin_line!r}",
                            line=pin_lineno,
                        ) from None
            pins.append((cell, direction, dx, dy))
            i += 1
        nets.append((net_name, pins))
    return nets


def _read_wts(path: str, net_names: list[str]) -> np.ndarray:
    weights = np.ones(len(net_names), dtype=np.float64)
    if not os.path.exists(path):
        return weights
    lines = _content_lines(path)
    index = {n: i for i, n in enumerate(net_names)}
    for lineno, line in lines:
        if line.startswith("UCLA"):
            continue
        parts = line.split()
        if len(parts) >= 2 and parts[0] in index:
            try:
                weights[index[parts[0]]] = float(parts[1])
            except ValueError:
                raise BookshelfParseError(
                    path, f"non-numeric net weight in {line!r}", line=lineno
                ) from None
    return weights


def _read_pl(path: str) -> dict[str, tuple[float, float, bool]]:
    """Returns ``{cell: (x lower-left, y lower-left, fixed)}``."""
    lines = _content_lines(path)
    placements: dict[str, tuple[float, float, bool]] = {}
    for lineno, line in lines:
        if line.startswith("UCLA"):
            continue
        parts = line.split()
        if len(parts) < 3:
            continue
        try:
            name, x, y = parts[0], float(parts[1]), float(parts[2])
        except ValueError:
            raise BookshelfParseError(
                path, f"non-numeric location in {line!r}", line=lineno
            ) from None
        fixed = "/FIXED" in line.upper()
        placements[name] = (x, y, fixed)
    return placements


def _read_scl(path: str) -> CoreArea:
    lines = _content_lines(path)
    rows: list[Row] = []
    i = 0
    while i < len(lines):
        if not lines[i][1].startswith("CoreRow"):
            i += 1
            continue
        block_lineno = lines[i][0]
        coord = height = site_width = origin = num_sites = None
        i += 1
        while i < len(lines) and lines[i][1] != "End":
            lineno, line = lines[i]
            key, _, value = line.partition(":")
            key = key.strip().lower()
            value = value.split()[0] if value.split() else "0"
            try:
                if key == "coordinate":
                    coord = float(value)
                elif key == "height":
                    height = float(value)
                elif key in ("sitewidth", "sitespacing"):
                    if site_width is None or key == "sitewidth":
                        site_width = float(value)
                elif key == "subroworigin":
                    origin = float(value)
                    tail = line.split()
                    if "NumSites" in tail:
                        num_sites = int(tail[tail.index("NumSites") + 2])
                elif key == "numsites":
                    num_sites = int(value)
            except (ValueError, IndexError):
                raise BookshelfParseError(
                    path, f"bad CoreRow field {line!r}", line=lineno
                ) from None
            i += 1
        i += 1  # skip End
        if None in (coord, height, origin, num_sites):
            raise BookshelfParseError(
                path, "incomplete CoreRow block", line=block_lineno
            )
        rows.append(
            Row(
                y=coord, height=height, x=origin,
                site_width=site_width or 1.0, num_sites=num_sites,
            )
        )
    if not rows:
        raise BookshelfParseError(path, "no CoreRow blocks found")
    return CoreArea(rows=rows)


def read_aux(path: str) -> tuple[Netlist, Placement]:
    """Load a Bookshelf design from its ``.aux`` file.

    Returns the netlist and the placement recorded in the ``.pl`` file
    (centers; movable cells keep whatever starting location the file has).
    """
    base = os.path.dirname(path)
    with open(path) as handle:
        content = handle.read()
    _, _, file_list = content.partition(":")
    files = {os.path.splitext(f)[1]: os.path.join(base, f) for f in file_list.split()}
    for ext in (".nodes", ".nets", ".pl", ".scl"):
        if ext not in files:
            raise BookshelfParseError(
                path, f"aux file lists no {ext} file", line=1
            )

    raw_nodes = _read_nodes(files[".nodes"])
    raw_nets = _read_nets(files[".nets"])
    placements = _read_pl(files[".pl"])
    core = _read_scl(files[".scl"])
    row_height = core.row_height

    names = list(raw_nodes.keys())
    index = {n: i for i, n in enumerate(names)}
    n = len(names)
    widths = np.array([raw_nodes[c].width for c in names])
    heights = np.array([raw_nodes[c].height for c in names])
    kinds = np.zeros(n, dtype=np.int8)
    movable = np.ones(n, dtype=bool)
    x = np.zeros(n)
    y = np.zeros(n)
    for i, name in enumerate(names):
        node = raw_nodes[name]
        px, py, fixed = placements.get(name, (0.0, 0.0, False))
        # Bookshelf stores lower-left corners; convert to centers.
        x[i] = px + 0.5 * node.width
        y[i] = py + 0.5 * node.height
        if node.terminal:
            kinds[i] = CellKind.TERMINAL
            movable[i] = False
        elif node.height > 1.5 * row_height:
            kinds[i] = CellKind.MACRO
            movable[i] = not fixed
        else:
            movable[i] = not fixed

    net_names = [name for name, _ in raw_nets]
    degrees = np.array([len(pins) for _, pins in raw_nets], dtype=np.int64)
    net_start = np.zeros(len(raw_nets) + 1, dtype=np.int64)
    np.cumsum(degrees, out=net_start[1:])
    total = int(net_start[-1])
    pin_cell = np.zeros(total, dtype=np.int64)
    pin_dx = np.zeros(total)
    pin_dy = np.zeros(total)
    pin_is_driver = np.zeros(total, dtype=bool)
    cursor = 0
    for net_name, pins in raw_nets:
        driver_seen = False
        first = cursor
        for cell, direction, dx, dy in pins:
            if cell not in index:
                raise BookshelfError(
                    f"{files['.nets']}: net {net_name!r} references "
                    f"unknown node {cell!r}"
                )
            pin_cell[cursor] = index[cell]
            pin_dx[cursor] = dx
            pin_dy[cursor] = dy
            if direction.upper().startswith("O") and not driver_seen:
                pin_is_driver[cursor] = True
                driver_seen = True
            cursor += 1
        if not driver_seen:
            pin_is_driver[first] = True

    weights = (
        _read_wts(files[".wts"], net_names) if ".wts" in files
        else np.ones(len(net_names))
    )

    netlist = Netlist(
        name=os.path.splitext(os.path.basename(path))[0],
        cell_names=names,
        widths=widths,
        heights=heights,
        kinds=kinds,
        movable=movable,
        fixed_x=np.where(movable, 0.0, x),
        fixed_y=np.where(movable, 0.0, y),
        net_names=net_names,
        net_start=net_start,
        pin_cell=pin_cell,
        pin_dx=pin_dx,
        pin_dy=pin_dy,
        net_weights=weights,
        core=core,
        pin_is_driver=pin_is_driver,
    )
    return netlist, Placement(x, y)


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------

def write_aux(netlist: Netlist, placement: Placement, directory: str,
              design: str | None = None) -> str:
    """Write a design as a Bookshelf file set; returns the ``.aux`` path."""
    design = design or netlist.name
    os.makedirs(directory, exist_ok=True)
    files = {ext: f"{design}{ext}" for ext in (".nodes", ".nets", ".wts", ".pl", ".scl")}

    _write_nodes(netlist, os.path.join(directory, files[".nodes"]))
    _write_nets(netlist, os.path.join(directory, files[".nets"]))
    _write_wts(netlist, os.path.join(directory, files[".wts"]))
    _write_pl(netlist, placement, os.path.join(directory, files[".pl"]))
    _write_scl(netlist, os.path.join(directory, files[".scl"]))

    aux_path = os.path.join(directory, f"{design}.aux")
    with open(aux_path, "w") as handle:
        handle.write(
            "RowBasedPlacement : "
            + " ".join(files[ext] for ext in (".nodes", ".nets", ".wts", ".pl", ".scl"))
            + "\n"
        )
    return aux_path


def _write_nodes(netlist: Netlist, path: str) -> None:
    terminals = int(netlist.is_terminal.sum())
    with open(path, "w") as handle:
        handle.write("UCLA nodes 1.0\n")
        handle.write(f"NumNodes : {netlist.num_cells}\n")
        handle.write(f"NumTerminals : {terminals}\n")
        for i, name in enumerate(netlist.cell_names):
            tag = " terminal" if netlist.kinds[i] == CellKind.TERMINAL else ""
            handle.write(
                f"{name} {netlist.widths[i]:g} {netlist.heights[i]:g}{tag}\n"
            )


def _write_nets(netlist: Netlist, path: str) -> None:
    with open(path, "w") as handle:
        handle.write("UCLA nets 1.0\n")
        handle.write(f"NumNets : {netlist.num_nets}\n")
        handle.write(f"NumPins : {netlist.num_pins}\n")
        for e, name in enumerate(netlist.net_names):
            span = netlist.net_pins(e)
            degree = span.stop - span.start
            handle.write(f"NetDegree : {degree} {name}\n")
            for p in range(span.start, span.stop):
                direction = "O" if netlist.pin_is_driver[p] else "I"
                handle.write(
                    f"  {netlist.cell_names[netlist.pin_cell[p]]} {direction} : "
                    f"{netlist.pin_dx[p]:g} {netlist.pin_dy[p]:g}\n"
                )


def _write_wts(netlist: Netlist, path: str) -> None:
    with open(path, "w") as handle:
        handle.write("UCLA wts 1.0\n")
        for name, weight in zip(netlist.net_names, netlist.net_weights):
            handle.write(f"{name} {weight:g}\n")


def _write_pl(netlist: Netlist, placement: Placement, path: str) -> None:
    with open(path, "w") as handle:
        handle.write("UCLA pl 1.0\n")
        for i, name in enumerate(netlist.cell_names):
            # Convert centers back to lower-left corners.
            x = placement.x[i] - 0.5 * netlist.widths[i]
            y = placement.y[i] - 0.5 * netlist.heights[i]
            tag = "" if netlist.movable[i] else " /FIXED"
            handle.write(f"{name} {x:.10g} {y:.10g} : N{tag}\n")


def _write_scl(netlist: Netlist, path: str) -> None:
    rows = netlist.core.rows
    with open(path, "w") as handle:
        handle.write("UCLA scl 1.0\n")
        handle.write(f"NumRows : {len(rows)}\n")
        for row in rows:
            handle.write("CoreRow Horizontal\n")
            handle.write(f"  Coordinate : {row.y:g}\n")
            handle.write(f"  Height : {row.height:g}\n")
            handle.write(f"  Sitewidth : {row.site_width:g}\n")
            handle.write(f"  Sitespacing : {row.site_width:g}\n")
            handle.write("  Siteorient : 1\n")
            handle.write("  Sitesymmetry : 1\n")
            handle.write(
                f"  SubrowOrigin : {row.x:g} NumSites : {row.num_sites}\n"
            )
            handle.write("End\n")
