"""Netlist data model, Bookshelf I/O and legality checking."""

from .bookshelf import BookshelfError, BookshelfParseError, read_aux, write_aux
from .builder import NetlistBuilder
from .cells import CellKind, CellView
from .geometry import Rect
from .netlist import Netlist, Placement, PlacementRegion
from .rows import CoreArea, Row
from .validate import LegalityReport, check_legal, find_overlaps, total_overlap_area

__all__ = [
    "BookshelfError",
    "BookshelfParseError",
    "CellKind",
    "CellView",
    "CoreArea",
    "LegalityReport",
    "Netlist",
    "NetlistBuilder",
    "Placement",
    "PlacementRegion",
    "Rect",
    "Row",
    "check_legal",
    "find_overlaps",
    "read_aux",
    "total_overlap_area",
    "write_aux",
]
