"""The central netlist data structure.

A :class:`Netlist` is a hypergraph over cells with planar geometry:

* per-cell arrays: ``widths``, ``heights``, ``kinds``, ``movable`` plus the
  fixed positions of terminals/fixed macros,
* per-net pin lists in CSR layout (``net_start``, ``pin_cell``, ``pin_dx``,
  ``pin_dy``) where pin offsets are relative to the **cell center**,
* net weights (timing/power-driven placement manipulates these),
* the :class:`~repro.netlist.rows.CoreArea` rows the cells must land in,
* optional hard region constraints (paper Section S5).

All coordinates handled by the placer refer to **cell centers**; the
Bookshelf reader/writer converts to/from the lower-left-corner convention
of the ISPD files.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cells import CellKind, CellView
from .geometry import Rect
from .rows import CoreArea

__all__ = [
    "Netlist",
    "Placement",
    "PlacementRegion",
]


@dataclass
class PlacementRegion:
    """A hard region constraint: ``cells`` must stay inside ``rect``."""

    name: str
    rect: Rect
    cells: np.ndarray  # int indices of constrained cells

    def __post_init__(self) -> None:
        self.cells = np.asarray(self.cells, dtype=np.int64)


@dataclass
class Placement:
    """Cell-center coordinates for every cell of a netlist."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.x.shape != self.y.shape:
            raise ValueError("x and y must have identical shapes")

    def copy(self) -> "Placement":
        return Placement(self.x.copy(), self.y.copy())

    def __len__(self) -> int:
        return int(self.x.shape[0])


class Netlist:
    """Immutable-structure placement netlist (geometry arrays are fixed).

    Parameters mirror the attribute names; see the module docstring for the
    storage conventions.  Use :class:`~repro.netlist.builder.NetlistBuilder`
    to construct instances incrementally by name.
    """

    def __init__(
        self,
        name: str,
        cell_names: list[str],
        widths: np.ndarray,
        heights: np.ndarray,
        kinds: np.ndarray,
        movable: np.ndarray,
        fixed_x: np.ndarray,
        fixed_y: np.ndarray,
        net_names: list[str],
        net_start: np.ndarray,
        pin_cell: np.ndarray,
        pin_dx: np.ndarray,
        pin_dy: np.ndarray,
        net_weights: np.ndarray | None = None,
        core: CoreArea | None = None,
        regions: list[PlacementRegion] | None = None,
        pin_is_driver: np.ndarray | None = None,
    ) -> None:
        self.name = name
        self.cell_names = list(cell_names)
        self.widths = np.asarray(widths, dtype=np.float64)
        self.heights = np.asarray(heights, dtype=np.float64)
        self.kinds = np.asarray(kinds, dtype=np.int8)
        self.movable = np.asarray(movable, dtype=bool)
        self.fixed_x = np.asarray(fixed_x, dtype=np.float64)
        self.fixed_y = np.asarray(fixed_y, dtype=np.float64)
        self.net_names = list(net_names)
        self.net_start = np.asarray(net_start, dtype=np.int64)
        self.pin_cell = np.asarray(pin_cell, dtype=np.int64)
        self.pin_dx = np.asarray(pin_dx, dtype=np.float64)
        self.pin_dy = np.asarray(pin_dy, dtype=np.float64)
        if net_weights is None:
            net_weights = np.ones(len(net_names), dtype=np.float64)
        self.net_weights = np.asarray(net_weights, dtype=np.float64)
        if core is None:
            core = CoreArea.uniform(Rect(0.0, 0.0, 100.0, 100.0), row_height=1.0)
        self.core = core
        self.regions = list(regions or [])
        if pin_is_driver is None:
            # By convention the first pin of each net drives it; STA relies
            # on this when the generator supplies no explicit directions.
            pin_is_driver = np.zeros(self.pin_cell.shape[0], dtype=bool)
            pin_is_driver[self.net_start[:-1]] = True
        self.pin_is_driver = np.asarray(pin_is_driver, dtype=bool)

        self._name_to_cell: dict[str, int] | None = None
        self._name_to_net: dict[str, int] | None = None
        self._cell_pins: tuple[np.ndarray, np.ndarray] | None = None
        self._pin_net_ids: np.ndarray | None = None
        self.validate_structure()

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.cell_names)

    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    @property
    def num_pins(self) -> int:
        return int(self.pin_cell.shape[0])

    @property
    def num_movable(self) -> int:
        return int(self.movable.sum())

    # ------------------------------------------------------------------
    # masks and derived arrays
    # ------------------------------------------------------------------
    @property
    def is_macro(self) -> np.ndarray:
        return self.kinds == CellKind.MACRO

    @property
    def is_terminal(self) -> np.ndarray:
        return self.kinds == CellKind.TERMINAL

    @property
    def movable_macros(self) -> np.ndarray:
        return self.is_macro & self.movable

    @property
    def areas(self) -> np.ndarray:
        return self.widths * self.heights

    @property
    def net_degrees(self) -> np.ndarray:
        return np.diff(self.net_start)

    def net_pins(self, net: int) -> slice:
        """Slice into the pin arrays covering net ``net``."""
        return slice(int(self.net_start[net]), int(self.net_start[net + 1]))

    # ------------------------------------------------------------------
    # name lookup and views
    # ------------------------------------------------------------------
    def cell_index(self, name: str) -> int:
        if self._name_to_cell is None:
            self._name_to_cell = {n: i for i, n in enumerate(self.cell_names)}
        return self._name_to_cell[name]

    def net_index(self, name: str) -> int:
        if self._name_to_net is None:
            self._name_to_net = {n: i for i, n in enumerate(self.net_names)}
        return self._name_to_net[name]

    def cell(self, key: int | str) -> CellView:
        index = key if isinstance(key, int) else self.cell_index(key)
        return CellView(self, index)

    # ------------------------------------------------------------------
    # cell -> nets adjacency (built lazily, cached)
    # ------------------------------------------------------------------
    def _build_cell_pins(self) -> tuple[np.ndarray, np.ndarray]:
        if self._cell_pins is None:
            order = np.argsort(self.pin_cell, kind="stable")
            counts = np.bincount(self.pin_cell, minlength=self.num_cells)
            start = np.zeros(self.num_cells + 1, dtype=np.int64)
            np.cumsum(counts, out=start[1:])
            self._cell_pins = (start, order)
        return self._cell_pins

    def pin_net_ids(self) -> np.ndarray:
        """Net index of every pin (aligned with ``pin_cell``).

        Memoized: the CSR pin layout of a built ``Netlist`` is immutable,
        and this array is requested once per axis per placement iteration
        by the net-model decompositions.  The cached array is returned
        read-only so an accidental in-place write cannot poison later
        callers; rebuilding through :class:`NetlistBuilder` produces a
        fresh ``Netlist`` (and therefore a fresh cache).
        """
        if self._pin_net_ids is None:
            ids = np.zeros(self.num_pins, dtype=np.int64)
            ids[self.net_start[1:-1]] = 1
            ids = np.cumsum(ids)
            ids.setflags(write=False)
            self._pin_net_ids = ids
        return self._pin_net_ids

    def nets_of_cell(self, cell: int) -> list[int]:
        """Sorted unique net indices incident to ``cell``."""
        start, order = self._build_cell_pins()
        pins = order[start[cell]:start[cell + 1]]
        nets = self.pin_net_ids()[pins]
        return sorted(set(int(n) for n in nets))

    # ------------------------------------------------------------------
    # placements
    # ------------------------------------------------------------------
    def initial_placement(self, jitter: float = 0.0, seed: int = 0) -> Placement:
        """All movables at the core center (plus optional jitter); fixed
        cells at their fixed locations.

        A tiny jitter avoids exactly-coincident points, which degrade the
        Bound2Bound model (zero-length bounding boxes).
        """
        cx, cy = self.core.bounds.center
        x = np.where(self.movable, cx, self.fixed_x)
        y = np.where(self.movable, cy, self.fixed_y)
        if jitter > 0.0:
            rng = np.random.default_rng(seed)
            x = x + np.where(self.movable, rng.uniform(-jitter, jitter, self.num_cells), 0.0)
            y = y + np.where(self.movable, rng.uniform(-jitter, jitter, self.num_cells), 0.0)
        return Placement(x, y)

    def clamp_to_core(self, placement: Placement) -> Placement:
        """Clamp movable cell centers so cells stay inside the core."""
        b = self.core.bounds
        half_w = 0.5 * self.widths
        half_h = 0.5 * self.heights
        xlo = np.minimum(b.xlo + half_w, b.center[0])
        xhi = np.maximum(b.xhi - half_w, b.center[0])
        ylo = np.minimum(b.ylo + half_h, b.center[1])
        yhi = np.maximum(b.yhi - half_h, b.center[1])
        x = np.where(self.movable, np.clip(placement.x, xlo, xhi), placement.x)
        y = np.where(self.movable, np.clip(placement.y, ylo, yhi), placement.y)
        return Placement(x, y)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate_structure(self) -> None:
        """Raise ``ValueError`` on structurally inconsistent data."""
        n = self.num_cells
        for arr, label in (
            (self.widths, "widths"), (self.heights, "heights"),
            (self.kinds, "kinds"), (self.movable, "movable"),
            (self.fixed_x, "fixed_x"), (self.fixed_y, "fixed_y"),
        ):
            if arr.shape != (n,):
                raise ValueError(f"{label} has shape {arr.shape}, expected ({n},)")
        if np.any(self.widths < 0) or np.any(self.heights < 0):
            raise ValueError("negative cell dimensions")
        m = self.num_nets
        if self.net_start.shape != (m + 1,):
            raise ValueError("net_start must have num_nets + 1 entries")
        if self.net_start[0] != 0 or self.net_start[-1] != self.num_pins:
            raise ValueError("net_start must span [0, num_pins]")
        if np.any(np.diff(self.net_start) < 0):
            raise ValueError("net_start must be non-decreasing")
        if self.num_pins and (
            self.pin_cell.min() < 0 or self.pin_cell.max() >= n
        ):
            raise ValueError("pin_cell index out of range")
        if self.net_weights.shape != (m,):
            raise ValueError("net_weights must have one entry per net")
        if np.any(self.net_weights < 0):
            raise ValueError("net weights must be non-negative")
        if np.any(self.movable & (self.kinds == CellKind.TERMINAL)):
            raise ValueError("terminals cannot be movable")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Netlist({self.name!r}, cells={self.num_cells}, "
            f"nets={self.num_nets}, pins={self.num_pins}, "
            f"movable={self.num_movable})"
        )
