"""Basic planar geometry used throughout the placer.

All placement code works with axis-aligned rectangles.  ``Rect`` is a tiny
immutable value type; heavier geometric work (density rasterization,
spreading) is done on numpy arrays elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Rect",
]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(f"degenerate rectangle: {self}")

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (0.5 * (self.xlo + self.xhi), 0.5 * (self.ylo + self.yhi))

    def contains_point(self, x: float, y: float, tol: float = 0.0) -> bool:
        """True when ``(x, y)`` lies inside the rectangle (within ``tol``)."""
        return (
            self.xlo - tol <= x <= self.xhi + tol
            and self.ylo - tol <= y <= self.yhi + tol
        )

    def contains_rect(self, other: "Rect", tol: float = 0.0) -> bool:
        """True when ``other`` lies fully inside this rectangle."""
        return (
            self.xlo - tol <= other.xlo
            and other.xhi <= self.xhi + tol
            and self.ylo - tol <= other.ylo
            and other.yhi <= self.yhi + tol
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles share interior area."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap region (0 when disjoint)."""
        dx = min(self.xhi, other.xhi) - max(self.xlo, other.xlo)
        dy = min(self.yhi, other.yhi) - max(self.ylo, other.ylo)
        if dx <= 0.0 or dy <= 0.0:
            return 0.0
        return dx * dy

    def clamp_point(self, x: float, y: float) -> tuple[float, float]:
        """Closest point of the rectangle to ``(x, y)`` (L1 == L2 projection)."""
        return (min(max(x, self.xlo), self.xhi), min(max(y, self.ylo), self.yhi))

    def shrunk(self, margin_x: float, margin_y: float | None = None) -> "Rect":
        """Rectangle shrunk by a margin on every side (clipped at center)."""
        if margin_y is None:
            margin_y = margin_x
        cx, cy = self.center
        xlo = min(self.xlo + margin_x, cx)
        xhi = max(self.xhi - margin_x, cx)
        ylo = min(self.ylo + margin_y, cy)
        yhi = max(self.yhi - margin_y, cy)
        return Rect(xlo, ylo, xhi, yhi)

    def expanded(self, margin_x: float, margin_y: float | None = None) -> "Rect":
        """Rectangle grown by a margin on every side."""
        if margin_y is None:
            margin_y = margin_x
        return Rect(
            self.xlo - margin_x, self.ylo - margin_y,
            self.xhi + margin_x, self.yhi + margin_y,
        )
