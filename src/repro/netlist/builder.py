"""Incremental construction of :class:`~repro.netlist.netlist.Netlist`.

The builder lets tests, examples and the Bookshelf reader assemble a
netlist by name without worrying about the CSR pin layout::

    b = NetlistBuilder("demo", core=CoreArea.uniform(Rect(0, 0, 100, 100), 1.0))
    b.add_cell("a", width=2.0, height=1.0)
    b.add_cell("p0", width=0.0, height=0.0, kind=CellKind.TERMINAL,
               fixed_at=(0.0, 50.0))
    b.add_net("n0", [("a", 0.0, 0.0), ("p0", 0.0, 0.0)])
    netlist = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cells import CellKind
from .geometry import Rect
from .netlist import Netlist, PlacementRegion
from .rows import CoreArea

__all__ = [
    "NetlistBuilder",
    "PinSpec",
]

#: A pin spec: (cell name, x offset from center, y offset from center).
PinSpec = tuple[str, float, float]


@dataclass
class _CellRecord:
    name: str
    width: float
    height: float
    kind: CellKind
    movable: bool
    fixed_x: float
    fixed_y: float


@dataclass
class _NetRecord:
    name: str
    pins: list[PinSpec]
    weight: float
    driver: int  # index into pins of the driving pin


@dataclass
class NetlistBuilder:
    """Accumulates cells and nets, then emits a validated ``Netlist``."""

    name: str
    core: CoreArea | None = None
    _cells: list[_CellRecord] = field(default_factory=list)
    _nets: list[_NetRecord] = field(default_factory=list)
    _cell_index: dict[str, int] = field(default_factory=dict)
    _regions: list[PlacementRegion] = field(default_factory=list)

    def add_cell(
        self,
        name: str,
        width: float,
        height: float,
        kind: CellKind = CellKind.STANDARD,
        movable: bool | None = None,
        fixed_at: tuple[float, float] | None = None,
    ) -> int:
        """Register a cell and return its index.

        ``fixed_at`` gives the **center** coordinates of a non-movable cell.
        ``movable`` defaults to True except for terminals, and is forced
        False whenever ``fixed_at`` is supplied.
        """
        if name in self._cell_index:
            raise ValueError(f"duplicate cell name: {name!r}")
        if movable is None:
            movable = kind != CellKind.TERMINAL
        if fixed_at is not None:
            movable = False
        if not movable and fixed_at is None:
            fixed_at = (0.0, 0.0)
        fx, fy = fixed_at if fixed_at is not None else (0.0, 0.0)
        index = len(self._cells)
        self._cells.append(
            _CellRecord(name, float(width), float(height), kind, movable, fx, fy)
        )
        self._cell_index[name] = index
        return index

    def add_net(
        self,
        name: str,
        pins: list[PinSpec],
        weight: float = 1.0,
        driver: int = 0,
    ) -> int:
        """Register a net given ``(cell, dx, dy)`` pin specs.

        ``driver`` is the index within ``pins`` of the driving pin (used by
        static timing analysis); it defaults to the first pin.
        """
        if len(pins) < 1:
            raise ValueError(f"net {name!r} has no pins")
        for cell, _, _ in pins:
            if cell not in self._cell_index:
                raise KeyError(f"net {name!r} references unknown cell {cell!r}")
        if not 0 <= driver < len(pins):
            raise ValueError(f"net {name!r}: driver index {driver} out of range")
        index = len(self._nets)
        self._nets.append(_NetRecord(name, list(pins), float(weight), driver))
        return index

    def add_region(self, name: str, rect: Rect, cells: list[str]) -> None:
        """Add a hard region constraint over the named cells (Section S5)."""
        indices = np.array([self._cell_index[c] for c in cells], dtype=np.int64)
        self._regions.append(PlacementRegion(name, rect, indices))

    def __contains__(self, cell_name: str) -> bool:
        return cell_name in self._cell_index

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    @property
    def num_nets(self) -> int:
        return len(self._nets)

    def build(self) -> Netlist:
        """Validate and freeze the accumulated data into a ``Netlist``."""
        n = len(self._cells)
        cell_names = [c.name for c in self._cells]
        widths = np.array([c.width for c in self._cells], dtype=np.float64)
        heights = np.array([c.height for c in self._cells], dtype=np.float64)
        kinds = np.array([c.kind for c in self._cells], dtype=np.int8)
        movable = np.array([c.movable for c in self._cells], dtype=bool)
        fixed_x = np.array([c.fixed_x for c in self._cells], dtype=np.float64)
        fixed_y = np.array([c.fixed_y for c in self._cells], dtype=np.float64)

        net_names = [net.name for net in self._nets]
        net_weights = np.array([net.weight for net in self._nets], dtype=np.float64)
        degrees = np.array([len(net.pins) for net in self._nets], dtype=np.int64)
        net_start = np.zeros(len(self._nets) + 1, dtype=np.int64)
        np.cumsum(degrees, out=net_start[1:])

        total_pins = int(net_start[-1])
        pin_cell = np.zeros(total_pins, dtype=np.int64)
        pin_dx = np.zeros(total_pins, dtype=np.float64)
        pin_dy = np.zeros(total_pins, dtype=np.float64)
        pin_is_driver = np.zeros(total_pins, dtype=bool)
        cursor = 0
        for net in self._nets:
            for j, (cell, dx, dy) in enumerate(net.pins):
                pin_cell[cursor] = self._cell_index[cell]
                pin_dx[cursor] = dx
                pin_dy[cursor] = dy
                pin_is_driver[cursor] = j == net.driver
                cursor += 1

        core = self.core
        if core is None:
            # Derive a square core sized for ~60% utilization of movable area.
            movable_area = float((widths * heights)[movable].sum())
            side = max(10.0, np.sqrt(movable_area / 0.6))
            row_h = float(heights[movable].min()) if movable.any() else 1.0
            core = CoreArea.uniform(Rect(0.0, 0.0, side, side), row_height=max(row_h, 1e-3))

        return Netlist(
            name=self.name,
            cell_names=cell_names,
            widths=widths,
            heights=heights,
            kinds=kinds,
            movable=movable,
            fixed_x=fixed_x,
            fixed_y=fixed_y,
            net_names=net_names,
            net_start=net_start,
            pin_cell=pin_cell,
            pin_dx=pin_dx,
            pin_dy=pin_dy,
            net_weights=net_weights,
            core=core,
            regions=self._regions,
            pin_is_driver=pin_is_driver,
        )
