"""Hot-path hook functions called from instrumented flow code.

These are the only fault-framework symbols the placer core, the CG
solver and the legalizers import.  Each hook is a no-op returning
immediately when no plan is installed, so instrumented code pays one
``None`` check per call site and the zero-fault trajectory is
bit-identical to an uninstrumented build.
"""

from __future__ import annotations

import logging

import numpy as np

from .plan import FaultSpec, InjectedFault, SimulatedCrash, active_plan

__all__ = [
    "corrupt_placement",
    "fire",
    "maybe_raise",
]

logger = logging.getLogger(__name__)

#: Exception class raised per site by :func:`maybe_raise`.
_RAISES = {
    "loop.kill": SimulatedCrash,
    "cg.non_spd": ValueError,
    "legalize.abacus": InjectedFault,
    "legalize.tetris": InjectedFault,
}


def fire(site: str) -> FaultSpec | None:
    """Register a hit at ``site``; returns the armed spec, if any."""
    plan = active_plan()
    if plan is None:
        return None
    spec = plan.hit(site)
    if spec is not None:
        logger.warning("fault injected at %s (hit %d)", site,
                       plan._hits[site])
    return spec


def maybe_raise(site: str) -> None:
    """Raise the site's exception class if an injector is armed."""
    spec = fire(site)
    if spec is not None:
        raise _RAISES[site](f"injected fault at {site}")


def corrupt_placement(site: str, placement):
    """Poke a seeded NaN into one movable coordinate when armed.

    Returns the placement unchanged (same object) when the site is not
    armed; otherwise returns a corrupted copy, never mutating the input.
    """
    spec = fire(site)
    if spec is None:
        return placement
    out = placement.copy()
    rng = np.random.default_rng(spec.seed)
    idx = int(rng.integers(len(out)))
    out.x[idx] = np.nan
    return out
