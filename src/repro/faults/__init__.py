"""Deterministic, seedable fault injection for the placement flow.

The chaos suite (and any soak harness) drives the placer through its
recovery policies by arming *injectors* at instrumented hook sites:

>>> from repro import faults
>>> with faults.injected("cg.stall@2"):
...     result = placer.place()          # doctest: +SKIP

Sites and semantics are listed in :data:`repro.faults.plan.KNOWN_SITES`.
Set ``REPRO_FAULTS="site@ordinal,..."`` in the environment to arm a
plan process-wide (parsed once at import).  Without an installed plan
every hook is a no-op and the flow's trajectory is unchanged.
"""

from .hooks import corrupt_placement, fire, maybe_raise
from .plan import (
    KNOWN_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SimulatedCrash,
    active_plan,
    clear,
    injected,
    install,
    parse_plan,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KNOWN_SITES",
    "SimulatedCrash",
    "active_plan",
    "clear",
    "corrupt_placement",
    "fire",
    "injected",
    "install",
    "maybe_raise",
    "parse_plan",
]
