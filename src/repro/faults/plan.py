"""Deterministic fault plans: which site fails, on which hit, and how.

A :class:`FaultPlan` is a set of :class:`FaultSpec` entries keyed by
*site* — a short string naming an instrumented hook point in the flow
(``"cg.stall"``, ``"primal.nan"``, ``"legalize.abacus"``, ...).  Every
hook call increments the site's hit counter; a spec fires when the
counter reaches its ``at`` ordinal (1-based) and stays armed for
``count`` consecutive hits.  Plans are pure data: the same plan against
the same run produces the same faults, which is what lets the chaos
suite assert exact recovery behavior.

Activation is either explicit (``install(plan)`` / the :func:`injected`
context manager, used by tests) or via the ``REPRO_FAULTS`` environment
variable parsed at import time (``REPRO_FAULTS="cg.stall@3,primal.nan@2"``).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KNOWN_SITES",
    "SimulatedCrash",
    "active_plan",
    "clear",
    "injected",
    "install",
    "parse_plan",
]


class InjectedFault(RuntimeError):
    """Raised by an armed raise-type injector at its hook site."""


class SimulatedCrash(BaseException):
    """Simulated SIGKILL between iterations.

    Deliberately a ``BaseException`` so no recovery policy (which catch
    ``Exception`` subclasses at most) can swallow it — a real SIGKILL is
    not catchable either.  Only the chaos harness is expected to catch
    it.
    """


#: Instrumented hook sites and the fault class they inject.
KNOWN_SITES = {
    "loop.kill": "mid-run crash between global placement iterations",
    "primal.nan": "NaN poked into the primal iterate after the solve",
    "cg.stall": "CG solve returns without convergence",
    "cg.non_spd": "CG solve raises on a non-SPD system",
    "legalize.abacus": "abacus legalizer raises mid-run",
    "legalize.tetris": "tetris legalizer raises mid-run",
    # Service-level sites, fired by the repro.serve runtime in the
    # *parent* process at attempt dispatch (never inside the worker, so
    # retried attempts see a fresh ordinal and recovery is
    # deterministic).  ``seed`` carries the payload: the iteration the
    # worker dies at (crash, default 2) / the stall in seconds (hang).
    "serve.worker.crash": "worker process dies mid-job (simulated SIGKILL)",
    "serve.worker.hang": "worker process stalls until the deadline kills it",
}


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic injection: fire at the ``at``-th hook hit.

    ``at`` is the 1-based ordinal of the hit at ``site`` that triggers
    the fault; ``count`` keeps it armed for that many consecutive hits
    (1 models a transient fault, larger values a sticky one).  ``seed``
    feeds any randomized payload (e.g. which cell gets the NaN).
    """

    site: str
    at: int = 1
    count: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; "
                f"known: {', '.join(sorted(KNOWN_SITES))}"
            )
        if self.at < 1:
            raise ValueError("fault ordinal 'at' is 1-based")
        if self.count < 1:
            raise ValueError("fault count must be >= 1")


@dataclass
class FaultPlan:
    """A set of specs plus the per-site hit counters of the current run.

    The counters are lock-guarded: hooks fire from the threaded per-axis
    solves, so ``hit`` is a concurrent read-modify-write on ``_hits``.
    """

    specs: Sequence[FaultSpec] = ()
    _hits: dict = field(default_factory=dict, repr=False)
    _fired: list = field(default_factory=list, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def hit(self, site: str) -> FaultSpec | None:
        """Register one hit at ``site``; returns the armed spec, if any."""
        with self._lock:
            n = self._hits.get(site, 0) + 1
            self._hits[site] = n
            for spec in self.specs:
                if spec.site == site and spec.at <= n < spec.at + spec.count:
                    self._fired.append((site, n))
                    return spec
            return None

    def reset(self) -> None:
        """Zero the hit counters (reuse the plan for a fresh run)."""
        with self._lock:
            self._hits.clear()
            self._fired.clear()

    @property
    def fired(self) -> list:
        """``(site, hit ordinal)`` pairs that actually triggered."""
        with self._lock:
            return list(self._fired)


def parse_plan(text: str) -> FaultPlan:
    """Parse ``"site@at"`` / ``"site@at*count"`` / ``"site@at:seed"`` specs.

    Comma-separated, e.g. ``"cg.stall@3,primal.nan@2:7"``.  ``@at``
    defaults to 1.
    """
    specs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        site, _, rest = chunk.partition("@")
        at, count, seed = 1, 1, 0
        if rest:
            ordinal, _, seed_text = rest.partition(":")
            if seed_text:
                seed = int(seed_text)
            base, _, count_text = ordinal.partition("*")
            if count_text:
                count = int(count_text)
            if base:
                at = int(base)
        specs.append(FaultSpec(site=site.strip(), at=at, count=count,
                               seed=seed))
    return FaultPlan(tuple(specs))


_PLAN: FaultPlan | None = None


def install(plan: FaultPlan | None) -> None:
    """Make ``plan`` the process-wide active plan (None deactivates)."""
    global _PLAN
    _PLAN = plan


def clear() -> None:
    """Deactivate fault injection."""
    install(None)


def active_plan() -> FaultPlan | None:
    """The currently installed plan, or None."""
    return _PLAN


@contextmanager
def injected(plan: FaultPlan | str) -> Iterator[FaultPlan]:
    """Scope a plan to a ``with`` block (counters reset on entry)."""
    if isinstance(plan, str):
        plan = parse_plan(plan)
    plan.reset()
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


_env_spec = os.environ.get("REPRO_FAULTS")
if _env_spec:
    install(parse_plan(_env_spec))
del _env_spec
