"""Table formatting and aggregate statistics for experiment reports.

The paper's tables report per-benchmark values plus geometric-mean
ratios against a reference column; :class:`ComparisonTable` reproduces
that layout as monospace text (and CSV for machine consumption).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

import numpy as np


def geomean(values) -> float:
    """Geometric mean; ignores non-positive entries defensively."""
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[arr > 0]
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.log(arr).mean()))


def ratio_geomean(values, reference) -> float:
    """Geometric mean of pairwise ratios value/reference."""
    pairs = [
        (v, r) for v, r in zip(values, reference) if v > 0 and r > 0
    ]
    if not pairs:
        return 0.0
    return geomean(v / r for v, r in pairs)


@dataclass
class ComparisonTable:
    """A paper-style table: one row per benchmark, one column group per
    placer/configuration, with a geomean footer row.

    ``columns`` maps column name -> {row name -> value}.  Values may be
    floats or (value, annotation) pairs (Table 2 puts overflow penalties
    in parentheses).
    """

    title: str
    row_names: list[str] = field(default_factory=list)
    columns: dict[str, dict[str, object]] = field(default_factory=dict)
    reference_column: str | None = None

    def add(self, column: str, row: str, value: float,
            annotation: float | None = None) -> None:
        if row not in self.row_names:
            self.row_names.append(row)
        cell = value if annotation is None else (value, annotation)
        self.columns.setdefault(column, {})[row] = cell

    def _value(self, cell) -> float:
        return cell[0] if isinstance(cell, tuple) else cell

    def _annotation(self, cell) -> float | None:
        return cell[1] if isinstance(cell, tuple) else None

    def column_geomean_ratio(self, column: str) -> float:
        """Geomean of column/reference over rows present in both."""
        ref_name = self.reference_column or column
        ref = self.columns.get(ref_name, {})
        col = self.columns.get(column, {})
        rows = [r for r in self.row_names if r in ref and r in col]
        return ratio_geomean(
            (self._value(col[r]) for r in rows),
            (self._value(ref[r]) for r in rows),
        )

    def render(self, value_format: str = "{:.2f}") -> str:
        """Monospace rendering with a geomean footer."""
        names = list(self.columns.keys())
        width_row = max([len(r) for r in self.row_names] + [len("geomean")]) + 2
        col_width = max([len(n) for n in names] + [14]) + 2

        def fmt_cell(cell) -> str:
            if cell is None:
                return "-"
            value = value_format.format(self._value(cell))
            ann = self._annotation(cell)
            if ann is not None:
                value += f" ({ann:.2f})"
            return value

        out = io.StringIO()
        out.write(self.title + "\n")
        out.write("".ljust(width_row))
        for n in names:
            out.write(n.rjust(col_width))
        out.write("\n")
        for r in self.row_names:
            out.write(r.ljust(width_row))
            for n in names:
                out.write(fmt_cell(self.columns[n].get(r)).rjust(col_width))
            out.write("\n")
        out.write("geomean".ljust(width_row))
        for n in names:
            ratio = self.column_geomean_ratio(n)
            out.write(f"{ratio:.3f}x".rjust(col_width))
        out.write("\n")
        return out.getvalue()

    def to_csv(self, path: str) -> None:
        names = list(self.columns.keys())
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["benchmark"] + names)
            for r in self.row_names:
                row = [r]
                for n in names:
                    cell = self.columns[n].get(r)
                    row.append("" if cell is None else self._value(cell))
                writer.writerow(row)
            writer.writerow(
                ["geomean_ratio"]
                + [self.column_geomean_ratio(n) for n in names]
            )
