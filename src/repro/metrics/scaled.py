"""ISPD 2006 contest metric: scaled HPWL with overflow penalty.

Table 2 of the paper reports "scaled HPWL (the official contest metric)"
with "overflow penalties ... in parentheses".  The ISPD 2006 rules charge
1% of HPWL per 1% of scaled density overflow:

    scaled_hpwl = HPWL * (1 + overflow_percent / 100)

where ``overflow_percent`` is the total bin overflow above the target
density, normalized by total movable area (see
:meth:`repro.projection.grid.DensityGrid.overflow_percent`).  The contest
evaluates overflow on a fixed-resolution grid; we use the design's
default grid for the same role.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.hpwl import hpwl as total_hpwl
from ..netlist import Netlist, Placement
from ..projection.grid import DensityGrid, default_grid_shape


@dataclass
class ScaledHPWL:
    """HPWL, the overflow penalty, and their product."""

    hpwl: float
    overflow_percent: float
    scaled: float


def scaled_hpwl(
    netlist: Netlist,
    placement: Placement,
    gamma: float,
    grid: DensityGrid | None = None,
) -> ScaledHPWL:
    """Evaluate the ISPD-2006-style contest metric for a placement."""
    if grid is None:
        bins = default_grid_shape(netlist.num_movable)
        grid = DensityGrid(netlist, bins, bins)
    usage = grid.usage(placement)
    overflow = grid.overflow_percent(usage, gamma)
    base = total_hpwl(netlist, placement)
    return ScaledHPWL(
        hpwl=base,
        overflow_percent=overflow,
        scaled=base * (1.0 + overflow / 100.0),
    )
