"""Metrics and reporting: contest metric, geomeans, paper-style tables."""

from .report import ComparisonTable, geomean, ratio_geomean
from .scaled import ScaledHPWL, scaled_hpwl

__all__ = [
    "ComparisonTable",
    "ScaledHPWL",
    "geomean",
    "ratio_geomean",
    "scaled_hpwl",
]
