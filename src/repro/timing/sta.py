"""Static timing analysis over a placed netlist.

The paper's timing-driven extension (Section 5, Formula 13; Section S6)
only needs timing in a supporting role: find critical paths/cells and
derive criticalities and net weights between placement iterations.  This
module provides that substrate:

* a timing graph with one node per cell; each net contributes edges from
  its driver pin to every sink pin,
* delay model: a fixed cell delay plus a wire delay proportional to the
  Manhattan distance between driver and sink pins (a linear lumped-RC
  surrogate; adequate because only the *relative* criticality matters),
* arrival/required/slack by longest-path propagation.  Synthetic
  netlists are not true logic DAGs, so cycles are tolerated by
  propagating over the strongly-connected-component condensation
  (every cell in an SCC shares its component's arrival/required times).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist import Netlist, Placement


@dataclass
class TimingResult:
    """Arrival/required/slack per cell plus graph metadata."""

    arrival: np.ndarray
    required: np.ndarray
    slack: np.ndarray
    clock_period: float
    critical_cells: np.ndarray       # cells with negative slack
    max_arrival: float

    def cell_criticality(self, floor: float = 0.0) -> np.ndarray:
        """Normalized criticality in [floor, 1]: how negative the slack
        is relative to the clock period."""
        crit = np.clip(-self.slack / max(self.clock_period, 1e-12), 0.0, 1.0)
        return np.maximum(crit, floor)


class TimingGraph:
    """Cell-level timing graph bound to a netlist (geometry-independent).

    Construction is O(pins); edges are stored per net so delays can be
    re-derived from any placement without rebuilding.
    """

    def __init__(self, netlist: Netlist, cell_delay: float = 1.0,
                 wire_delay_per_unit: float = 0.1) -> None:
        self.netlist = netlist
        self.cell_delay = cell_delay
        self.wire_delay_per_unit = wire_delay_per_unit

        # Per net: driver pin index and sink pin indices.
        self.driver_pin = np.zeros(netlist.num_nets, dtype=np.int64)
        sinks: list[np.ndarray] = []
        for e in range(netlist.num_nets):
            span = netlist.net_pins(e)
            pins = np.arange(span.start, span.stop)
            drivers = pins[netlist.pin_is_driver[span]]
            driver = int(drivers[0]) if drivers.size else int(pins[0])
            self.driver_pin[e] = driver
            sinks.append(pins[pins != driver])
        self.sink_pins = sinks
        self._order, self._comp = self._condensation_order()

    def _condensation_order(self) -> tuple[list[int], np.ndarray]:
        """Topological order of SCC components (Tarjan via networkx)."""
        import networkx as nx

        nl = self.netlist
        graph = nx.DiGraph()
        graph.add_nodes_from(range(nl.num_cells))
        for e in range(nl.num_nets):
            src = int(nl.pin_cell[self.driver_pin[e]])
            for p in self.sink_pins[e]:
                dst = int(nl.pin_cell[p])
                if dst != src:
                    graph.add_edge(src, dst, net=e)
        comp = np.zeros(nl.num_cells, dtype=np.int64)
        cond = nx.condensation(graph)
        for comp_id, members in cond.nodes(data="members"):
            for cell in members:
                comp[cell] = comp_id
        order = list(nx.topological_sort(cond))
        self._cond = cond
        self._graph = graph
        return order, comp

    def analyze(self, placement: Placement,
                clock_period: float | None = None) -> TimingResult:
        """Propagate arrivals/requireds; slack against ``clock_period``.

        When ``clock_period`` is None it defaults to the worst arrival
        time (zero worst slack), which makes slack a pure path-length
        criticality measure — the mode the Figure 5 experiment uses.
        """
        nl = self.netlist
        n = nl.num_cells
        # Edge delays at this placement.
        px = placement.x[nl.pin_cell] + nl.pin_dx
        py = placement.y[nl.pin_cell] + nl.pin_dy

        comp_arrival = {c: 0.0 for c in self._order}
        cell_arrival = np.zeros(n)
        # Forward pass over the condensation.
        for comp_id in self._order:
            base = comp_arrival[comp_id]
            for cell in self._cond.nodes[comp_id]["members"]:
                cell_arrival[cell] = max(cell_arrival[cell], base)
            for cell in self._cond.nodes[comp_id]["members"]:
                for _, dst, data in self._graph.out_edges(cell, data=True):
                    e = data["net"]
                    dp = self.driver_pin[e]
                    sink_pin = self._pin_of(e, dst)
                    dist = abs(px[dp] - px[sink_pin]) + abs(py[dp] - py[sink_pin])
                    delay = self.cell_delay + self.wire_delay_per_unit * dist
                    t = cell_arrival[cell] + delay
                    dst_comp = self._comp[dst]
                    if dst_comp == comp_id:
                        continue  # intra-SCC edges carry no delay
                    if t > comp_arrival[dst_comp]:
                        comp_arrival[dst_comp] = t
                        for member in self._cond.nodes[dst_comp]["members"]:
                            cell_arrival[member] = max(cell_arrival[member], t)

        max_arrival = float(cell_arrival.max()) if n else 0.0
        if clock_period is None:
            clock_period = max_arrival
        # Backward pass: required times.
        cell_required = np.full(n, clock_period, dtype=np.float64)
        for comp_id in reversed(self._order):
            for cell in self._cond.nodes[comp_id]["members"]:
                for _, dst, data in self._graph.out_edges(cell, data=True):
                    if self._comp[dst] == comp_id:
                        continue
                    e = data["net"]
                    dp = self.driver_pin[e]
                    sink_pin = self._pin_of(e, dst)
                    dist = abs(px[dp] - px[sink_pin]) + abs(py[dp] - py[sink_pin])
                    delay = self.cell_delay + self.wire_delay_per_unit * dist
                    req = cell_required[dst] - delay
                    if req < cell_required[cell]:
                        cell_required[cell] = req

        slack = cell_required - cell_arrival
        return TimingResult(
            arrival=cell_arrival,
            required=cell_required,
            slack=slack,
            clock_period=float(clock_period),
            critical_cells=np.flatnonzero(slack < -1e-9),
            max_arrival=max_arrival,
        )

    def _pin_of(self, net: int, cell: int) -> int:
        """A sink pin of ``net`` on ``cell`` (first match)."""
        for p in self.sink_pins[net]:
            if self.netlist.pin_cell[p] == cell:
                return int(p)
        return int(self.driver_pin[net])

    def critical_path(self, placement: Placement) -> list[int]:
        """Cells along the longest (worst-arrival) path."""
        result = self.analyze(placement)
        # Walk back from the worst endpoint along tightest predecessors.
        end = int(np.argmax(result.arrival))
        path = [end]
        px = placement.x[self.netlist.pin_cell] + self.netlist.pin_dx
        py = placement.y[self.netlist.pin_cell] + self.netlist.pin_dy
        current = end
        guard = 0
        while guard < self.netlist.num_cells:
            guard += 1
            best_pred = None
            best_gap = np.inf
            for src, _, data in self._graph.in_edges(current, data=True):
                if self._comp[src] == self._comp[current]:
                    continue
                e = data["net"]
                dp = self.driver_pin[e]
                sp = self._pin_of(e, current)
                dist = abs(px[dp] - px[sp]) + abs(py[dp] - py[sp])
                delay = self.cell_delay + self.wire_delay_per_unit * dist
                gap = abs(
                    result.arrival[current] - (result.arrival[src] + delay)
                )
                if gap < best_gap:
                    best_gap = gap
                    best_pred = src
            if best_pred is None or best_gap > 1e-6:
                break
            path.append(int(best_pred))
            current = int(best_pred)
        path.reverse()
        return path
