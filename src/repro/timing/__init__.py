"""Static timing analysis and net-weighting (timing/power extensions)."""

from .power import (
    activity_criticality,
    estimate_dynamic_wire_power,
    power_weights,
    propagate_activities,
)
from .netweight import (
    criticality_vector,
    nets_on_path,
    path_length,
    slack_based_weights,
    weight_paths,
)
from .sta import TimingGraph, TimingResult

__all__ = [
    "TimingGraph",
    "TimingResult",
    "activity_criticality",
    "criticality_vector",
    "estimate_dynamic_wire_power",
    "power_weights",
    "propagate_activities",
    "nets_on_path",
    "path_length",
    "slack_based_weights",
    "weight_paths",
]
