"""Power-driven placement support: switching activities and net weights.

Paper Section 5: "Extensions for timing- and power-driven placement
traditionally rely on net weights computed from activity factors and
timing slacks ... Initially, gamma is populated with switching activity
factors."  This module supplies the activity substrate:

* switching-activity propagation through the timing graph: primary
  inputs get seed activities; each driven cell's activity is a damped
  combination of its fanin activities (a standard probabilistic
  transition-density surrogate),
* power-weighted net weights ``w_e * (1 + k * activity(driver))`` —
  dynamic wire power is activity x capacitance x V^2 and wire
  capacitance tracks length, so weighting high-activity nets shortens
  exactly the wires that burn power,
* the activity-seeded criticality vector for Formula 13.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Netlist
from .sta import TimingGraph


def propagate_activities(
    netlist: Netlist,
    graph: TimingGraph,
    input_activity: float = 0.2,
    damping: float = 0.8,
    seed: int = 0,
    randomize_inputs: bool = True,
) -> np.ndarray:
    """Per-cell switching activity in (0, 1].

    Sources (cells with no fanin) get ``input_activity`` (jittered when
    ``randomize_inputs``); every other cell receives ``damping`` times
    the mean activity of its fanins, propagated in topological order
    over the SCC condensation (cycles share their component's value).
    """
    if not 0.0 < input_activity <= 1.0:
        raise ValueError("input_activity must lie in (0, 1]")
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    n = netlist.num_cells
    activity = np.zeros(n)
    fanin_sum = np.zeros(n)
    fanin_count = np.zeros(n, dtype=np.int64)

    for comp_id in graph._order:
        members = graph._cond.nodes[comp_id]["members"]
        # Resolve this component's activity from accumulated fanins.
        comp_sum = sum(fanin_sum[c] for c in members)
        comp_count = sum(fanin_count[c] for c in members)
        if comp_count == 0:
            base = input_activity
            if randomize_inputs:
                base *= float(rng.uniform(0.5, 1.5))
            value = min(base, 1.0)
        else:
            value = damping * comp_sum / comp_count
        value = max(value, 1e-6)
        for cell in members:
            activity[cell] = value
            for _, dst in graph._graph.out_edges(cell):
                if graph._comp[dst] != comp_id:
                    fanin_sum[dst] += value
                    fanin_count[dst] += 1
    return activity


def power_weights(
    netlist: Netlist,
    graph: TimingGraph,
    activity: np.ndarray,
    sensitivity: float = 2.0,
    base: np.ndarray | None = None,
) -> np.ndarray:
    """Net weights boosted by the driving cell's switching activity."""
    if base is None:
        base = netlist.net_weights
    driver_cells = netlist.pin_cell[graph.driver_pin]
    return base * (1.0 + sensitivity * activity[driver_cells])


def activity_criticality(
    netlist: Netlist,
    activity: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Formula 13's initial gamma vector: activity-seeded multipliers.

    High-activity cells get penalty multipliers above 1 so the
    projection and detailed placement displace them less (displacing a
    hot cell stretches its hot nets).
    """
    gamma = 1.0 + scale * np.clip(activity, 0.0, 1.0)
    gamma[~netlist.movable] = 1.0
    return gamma


def estimate_dynamic_wire_power(
    netlist: Netlist,
    placement,
    graph: TimingGraph,
    activity: np.ndarray,
    cap_per_unit: float = 1.0,
) -> float:
    """Relative dynamic wire power: sum activity(driver) * length(net).

    Absolute units are arbitrary (voltage/frequency constants dropped);
    the quantity is meant for before/after comparisons.
    """
    from ..models.hpwl import per_net_hpwl

    lengths = per_net_hpwl(netlist, placement)
    driver_cells = netlist.pin_cell[graph.driver_pin]
    return float((activity[driver_cells] * lengths * cap_per_unit).sum())
