"""Net weighting for timing- and power-driven placement.

Paper Section 5: "Extensions for timing- and power-driven placement
traditionally rely on net weights computed from activity factors and
timing slacks"; Section S6 demonstrates that raising the weights of nets
along critical paths shrinks those paths with negligible total-HPWL
cost.  This module provides:

* slack-based net weights (a convergent Chan-Cong-Radke-style update:
  multiplicative in normalized negative slack),
* explicit path weighting (the Figure 5 experiment),
* criticality vectors for the weighted penalty term (Formula 13).
"""

from __future__ import annotations

import numpy as np

from ..models.hpwl import per_net_hpwl
from ..netlist import Netlist, Placement
from .sta import TimingGraph, TimingResult


def slack_based_weights(
    netlist: Netlist,
    timing: TimingResult,
    graph: TimingGraph,
    base: np.ndarray | None = None,
    sensitivity: float = 2.0,
) -> np.ndarray:
    """Net weights ``w_e * (1 + sensitivity * crit_e)``.

    ``crit_e`` is the normalized negative slack of the net's driver cell
    (0 for non-critical nets).  Applying this between placement
    iterations reproduces the standard convergent net-weighting loop [8].
    """
    if base is None:
        base = netlist.net_weights
    crit_cells = timing.cell_criticality()
    driver_cells = netlist.pin_cell[graph.driver_pin]
    crit = crit_cells[driver_cells]
    return base * (1.0 + sensitivity * crit)


def nets_on_path(netlist: Netlist, graph: TimingGraph,
                 path_cells: list[int]) -> list[int]:
    """Net indices connecting consecutive cells of a path."""
    nets: list[int] = []
    cell_set_pairs = list(zip(path_cells[:-1], path_cells[1:]))
    for src, dst in cell_set_pairs:
        for _, node, data in graph._graph.out_edges(src, data=True):
            if node == dst:
                nets.append(int(data["net"]))
                break
    return nets


def weight_paths(
    netlist: Netlist,
    path_nets: list[list[int]],
    factor: float,
) -> np.ndarray:
    """New weight vector with the given nets' weights multiplied.

    This is the Section S6 protocol: "increased the weights of nets
    comprising these paths" by factors such as 20 and 40.
    """
    if factor <= 0:
        raise ValueError("weight factor must be positive")
    weights = netlist.net_weights.copy()
    for nets in path_nets:
        for e in nets:
            weights[e] = netlist.net_weights[e] * factor
    return weights


def path_length(netlist: Netlist, placement: Placement,
                nets: list[int]) -> float:
    """Total HPWL of the nets making up one path."""
    spans = per_net_hpwl(netlist, placement)
    return float(spans[list(nets)].sum())


def criticality_vector(
    netlist: Netlist,
    timing: TimingResult,
    delta: float = 0.5,
    base: np.ndarray | None = None,
) -> np.ndarray:
    """Per-cell penalty multipliers for Formula 13.

    Cells on violating paths get ``gamma_i = gamma_i * (1 + delta)``
    (the paper's update rule); others keep their activity-factor base
    (1.0 by default).
    """
    gamma = np.ones(netlist.num_cells) if base is None else base.copy()
    gamma[timing.critical_cells] *= (1.0 + delta)
    return gamma
