"""Multilevel extension: clustering + coarse-to-fine ComPLx placement."""

from .clustering import Clustering, cluster_netlist
from .multilevel import MultilevelPlacer, MultilevelResult, multilevel_place

__all__ = [
    "Clustering",
    "MultilevelPlacer",
    "MultilevelResult",
    "cluster_netlist",
    "multilevel_place",
]
