"""Multilevel global placement: cluster -> place -> uncluster -> refine.

The paper compares against mPL6, a multilevel nonconvex placer, and
notes ComPLx avoids the multilevel machinery.  This module provides the
machinery anyway, as an *extension*: for very large netlists a coarse
ComPLx run on a clustered netlist followed by a warm-started fine run
converges in fewer fine-level iterations.  It doubles as an ablation
subject (is multilevel worth it on our instance sizes?).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core import ComPLxConfig, ComPLxPlacer, GlobalPlacementResult
from ..netlist import Netlist, Placement
from .clustering import Clustering, cluster_netlist


@dataclass
class MultilevelResult:
    """Final fine-level result plus per-level diagnostics."""

    result: GlobalPlacementResult
    levels: list[dict] = field(default_factory=list)
    runtime_seconds: float = 0.0

    @property
    def upper(self) -> Placement:
        return self.result.upper

    @property
    def lower(self) -> Placement:
        return self.result.lower


class MultilevelPlacer:
    """V-cycle (downward pass only) multilevel ComPLx.

    ``levels`` is the number of clustering levels; each level halves the
    movable standard-cell count (subject to the clustering area cap).
    The coarse levels run the full iteration budget; the fine levels run
    ``fine_iterations`` warm-started iterations each.
    """

    def __init__(
        self,
        netlist: Netlist,
        config: ComPLxConfig | None = None,
        levels: int = 1,
        fine_iterations: int = 25,
        uncluster_jitter_rows: float = 1.0,
    ) -> None:
        if levels < 1:
            raise ValueError("need at least one clustering level")
        self.netlist = netlist
        self.config = config or ComPLxConfig()
        self.levels = levels
        self.fine_iterations = fine_iterations
        self.uncluster_jitter_rows = uncluster_jitter_rows

    def place(self) -> MultilevelResult:
        start = time.perf_counter()
        # Build the clustering hierarchy (finest -> coarsest).
        hierarchy: list[Clustering] = []
        current = self.netlist
        for _ in range(self.levels):
            clustering = cluster_netlist(current, seed=self.config.seed)
            if clustering.clustered.num_movable >= current.num_movable:
                break  # nothing clusterable anymore
            hierarchy.append(clustering)
            current = clustering.clustered

        level_stats: list[dict] = []

        # Coarsest level: full run from scratch.
        coarse_placer = ComPLxPlacer(current, self.config)
        result = coarse_placer.place()
        level_stats.append({
            "level": len(hierarchy),
            "cells": current.num_cells,
            "iterations": result.iterations,
        })

        # Walk back down, warm-starting each finer level.
        placement = result.lower
        for clustering in reversed(hierarchy):
            jitter = self.uncluster_jitter_rows * \
                clustering.original.core.row_height
            warm = clustering.project_down(
                placement, jitter=jitter, seed=self.config.seed
            )
            fine_config = self.config.with_overrides(
                max_iterations=self.fine_iterations,
                init_sweeps=1,
            )
            placer = ComPLxPlacer(clustering.original, fine_config)
            result = placer.place(initial=warm)
            placement = result.lower
            level_stats.append({
                "level": len(level_stats) - 1,
                "cells": clustering.original.num_cells,
                "iterations": result.iterations,
            })

        return MultilevelResult(
            result=result,
            levels=level_stats,
            runtime_seconds=time.perf_counter() - start,
        )


def multilevel_place(netlist: Netlist, **kwargs) -> MultilevelResult:
    """One-call multilevel placement."""
    return MultilevelPlacer(netlist, **kwargs).place()
