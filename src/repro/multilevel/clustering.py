"""Connectivity-driven cell clustering (best-choice style).

mPL6 — one of the placers Table 2 compares against — owes its speed to a
multilevel scheme: cluster the netlist, place the small clustered
problem, then uncluster and refine.  This module provides the clustering
substrate for :class:`~repro.multilevel.multilevel.MultilevelPlacer`:

* pairwise affinity ``sum_e w_e / ((|e| - 1) * sqrt(area_u * area_v))``
  over shared nets (the standard best-choice score: strong connectivity,
  small clusters first),
* greedy pair merging down to a target cluster count, with an area cap
  so clusters stay placeable,
* cluster netlist construction: merged cells become one standard cell of
  the combined area (one row high); macros, terminals and fixed cells
  are never clustered; nets collapse duplicate pins and drop nets that
  become internal to a cluster.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..netlist import CellKind, Netlist, NetlistBuilder, Placement


@dataclass
class Clustering:
    """Mapping between a netlist and its clustered version."""

    original: Netlist
    clustered: Netlist
    #: cluster slot of every original cell (index into clustered netlist)
    cluster_of: np.ndarray

    def project_up(self, placement: Placement) -> Placement:
        """Original-cell placement -> clustered placement (area-weighted
        centroid of each cluster's members)."""
        n = self.clustered.num_cells
        w = np.maximum(self.original.areas, 1e-12)
        x = np.bincount(self.cluster_of, weights=placement.x * w, minlength=n)
        y = np.bincount(self.cluster_of, weights=placement.y * w, minlength=n)
        total = np.bincount(self.cluster_of, weights=w, minlength=n)
        total = np.maximum(total, 1e-12)
        return Placement(x / total, y / total)

    def project_down(self, placement: Placement,
                     jitter: float = 0.0, seed: int = 0) -> Placement:
        """Clustered placement -> original cells at their cluster's
        position (fixed cells keep their own locations)."""
        x = placement.x[self.cluster_of].copy()
        y = placement.y[self.cluster_of].copy()
        nl = self.original
        x[~nl.movable] = nl.fixed_x[~nl.movable]
        y[~nl.movable] = nl.fixed_y[~nl.movable]
        if jitter > 0.0:
            rng = np.random.default_rng(seed)
            x += np.where(nl.movable, rng.uniform(-jitter, jitter, x.shape), 0.0)
            y += np.where(nl.movable, rng.uniform(-jitter, jitter, y.shape), 0.0)
        return nl.clamp_to_core(Placement(x, y))


def _pair_affinities(netlist: Netlist, clusterable: np.ndarray,
                     max_degree: int = 10) -> dict[tuple[int, int], float]:
    """Affinity per clusterable cell pair sharing a small net."""
    affinity: dict[tuple[int, int], float] = {}
    areas = np.maximum(netlist.areas, 1e-3)
    degrees = netlist.net_degrees
    for e in range(netlist.num_nets):
        d = int(degrees[e])
        if d < 2 or d > max_degree:
            continue
        span = netlist.net_pins(e)
        cells = np.unique(netlist.pin_cell[span])
        cells = cells[clusterable[cells]]
        if cells.size < 2:
            continue
        score = netlist.net_weights[e] / (d - 1)
        for i in range(cells.size):
            for j in range(i + 1, cells.size):
                u, v = int(cells[i]), int(cells[j])
                key = (min(u, v), max(u, v))
                bonus = score / np.sqrt(areas[u] * areas[v])
                affinity[key] = affinity.get(key, 0.0) + bonus
    return affinity


def cluster_netlist(
    netlist: Netlist,
    target_clusters: int | None = None,
    max_cluster_area_factor: float = 8.0,
    seed: int = 0,
) -> Clustering:
    """Cluster movable standard cells down to ~``target_clusters``.

    Defaults to halving the movable standard-cell count.  Macros,
    terminals and fixed cells always remain singleton clusters.
    """
    std = netlist.movable & ~netlist.is_macro
    num_std = int(std.sum())
    if target_clusters is None:
        target_clusters = max(num_std // 2, 1)

    avg_area = float(netlist.areas[std].mean()) if num_std else 1.0
    area_cap = max_cluster_area_factor * avg_area

    # Union-find over cells; only std movable cells may merge.
    parent = np.arange(netlist.num_cells)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return int(i)

    group_area = netlist.areas.astype(np.float64).copy()
    affinity = _pair_affinities(netlist, std)
    heap = [(-score, u, v) for (u, v), score in affinity.items()]
    heapq.heapify(heap)

    merges_left = num_std - target_clusters
    while heap and merges_left > 0:
        neg_score, u, v = heapq.heappop(heap)
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        if group_area[ru] + group_area[rv] > area_cap:
            continue
        parent[rv] = ru
        group_area[ru] += group_area[rv]
        merges_left -= 1

    # Relabel roots to contiguous cluster ids, originals first so fixed
    # cells keep deterministic spots.
    roots = np.array([find(i) for i in range(netlist.num_cells)])
    unique_roots, cluster_of = np.unique(roots, return_inverse=True)

    clustered = _build_clustered_netlist(netlist, unique_roots, cluster_of)
    return Clustering(netlist, clustered, cluster_of.astype(np.int64))


def _build_clustered_netlist(
    netlist: Netlist,
    unique_roots: np.ndarray,
    cluster_of: np.ndarray,
) -> Netlist:
    builder = NetlistBuilder(f"{netlist.name}_clustered", core=netlist.core)
    row_h = netlist.core.row_height

    member_area = np.bincount(cluster_of, weights=netlist.areas,
                              minlength=unique_roots.size)
    member_count = np.bincount(cluster_of, minlength=unique_roots.size)
    for c, root in enumerate(unique_roots):
        root = int(root)
        name = f"cl{c}"
        if member_count[c] == 1:
            # Singleton: keep the original geometry and fixedness.
            kind = CellKind(int(netlist.kinds[root]))
            builder.add_cell(
                name, float(netlist.widths[root]), float(netlist.heights[root]),
                kind=kind,
                fixed_at=(
                    None if netlist.movable[root]
                    else (float(netlist.fixed_x[root]), float(netlist.fixed_y[root]))
                ),
            )
        else:
            width = max(float(member_area[c]) / row_h, 1e-6)
            builder.add_cell(name, width, row_h)

    # Nets: collapse pins to clusters, drop single-cluster nets.  Pin
    # offsets are dropped (cluster geometry is synthetic anyway).
    for e in range(netlist.num_nets):
        span = netlist.net_pins(e)
        clusters = np.unique(cluster_of[netlist.pin_cell[span]])
        if clusters.size < 2:
            continue
        builder.add_net(
            netlist.net_names[e],
            [(f"cl{int(c)}", 0.0, 0.0) for c in clusters],
            weight=float(netlist.net_weights[e]),
        )
    return builder.build()
