"""Portfolio builder: expand a base config into race variants.

A variant is a named, immutable bundle of ComPLx config overrides —
optionally derived from a Coloquinte-style effort preset — plus the
lineage bookkeeping the tuner uses when it re-queues adjusted copies.
Expansion is fully deterministic: the same inputs produce the same
variants in the same order, which the arbiter's replay guarantee
builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from ..core.config import ComPLxConfig
from ..core.effort import effort_overrides
from ..serve.queue import BACKGROUND_PRIORITY

__all__ = ["VariantSpec", "build_portfolio"]


@dataclass(frozen=True)
class VariantSpec:
    """One competitor in a race.

    ``overrides`` are :class:`ComPLxConfig` field overrides applied *on
    top of* the effort preset (explicit knobs win), mirroring how the
    serve worker expands a job's ``effort`` + ``config``.
    """

    variant_id: str
    overrides: dict[str, Any] = field(default_factory=dict)
    effort: int | None = None
    #: variant_id of the killed variant this one was tuned from.
    parent: str | None = None
    origin: str = "portfolio"  # "portfolio" | "tuned"

    def __post_init__(self) -> None:
        if not self.variant_id:
            raise ValueError("variant_id must be non-empty")
        if self.origin not in ("portfolio", "tuned"):
            raise ValueError(f"unknown origin {self.origin!r}")

    def effective_overrides(self) -> dict[str, Any]:
        """Preset knobs with explicit overrides folded on top."""
        knobs: dict[str, Any] = {}
        if self.effort is not None:
            knobs.update(effort_overrides(self.effort))
        knobs.update(self.overrides)
        return knobs

    def config(self, base: ComPLxConfig) -> ComPLxConfig:
        """The full placer config this variant runs with."""
        return base.with_overrides(**self.effective_overrides())

    def dedupe_key(self) -> tuple[tuple[str, Any], ...]:
        """Canonical identity of the knob set (for tuner dedupe)."""
        return tuple(sorted(self.effective_overrides().items()))

    def with_id(self, variant_id: str) -> "VariantSpec":
        return replace(self, variant_id=variant_id)

    def to_job_payload(self, workload: dict[str, Any], *,
                       tenant: str = "race",
                       priority: int = BACKGROUND_PRIORITY,
                       ) -> dict[str, Any]:
        """A :mod:`repro.serve` submission for this variant.

        Defaults to the *background* priority band so a race submitted
        through the service never starves interactive jobs.
        """
        if priority < BACKGROUND_PRIORITY:
            raise ValueError(
                "race variants must submit at background priority "
                f"(>= {BACKGROUND_PRIORITY}); got {priority}"
            )
        payload: dict[str, Any] = {
            "tenant": tenant,
            "name": self.variant_id,
            "priority": priority,
            "workload": dict(workload),
            "config": dict(self.overrides),
        }
        if self.effort is not None:
            payload["effort"] = self.effort
        return payload


def build_portfolio(
    *,
    seeds: Iterable[int] = (),
    efforts: Iterable[int] = (),
    variants: Mapping[str, Mapping[str, Any]] | None = None,
    base_overrides: Mapping[str, Any] | None = None,
    include_base: bool = True,
    limit: int | None = None,
) -> list[VariantSpec]:
    """Expand race inputs into an ordered, deduplicated variant list.

    * ``seeds`` — one variant per seed (``s<seed>``),
    * ``efforts`` — one variant per effort preset (``e<effort>``),
    * ``variants`` — named explicit override dicts,
    * ``base_overrides`` — knobs folded into *every* variant,
    * ``include_base`` — also race the unmodified base (``base``).

    The order is deterministic (base, seeds, efforts, named variants,
    each in input order); duplicates by knob identity are dropped,
    first occurrence wins.
    """
    base = dict(base_overrides or {})
    out: list[VariantSpec] = []
    if include_base:
        out.append(VariantSpec("base", overrides=dict(base)))
    for seed in seeds:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError(f"seeds must be ints, got {seed!r}")
        out.append(VariantSpec(f"s{seed}",
                               overrides={**base, "seed": seed}))
    for effort in efforts:
        out.append(VariantSpec(f"e{effort}", overrides=dict(base),
                               effort=int(effort)))
    for name, overrides in (variants or {}).items():
        out.append(VariantSpec(str(name),
                               overrides={**base, **dict(overrides)}))

    seen_ids: set[str] = set()
    seen_knobs: set[tuple] = set()
    unique: list[VariantSpec] = []
    for spec in out:
        if spec.variant_id in seen_ids:
            raise ValueError(f"duplicate variant id {spec.variant_id!r}")
        seen_ids.add(spec.variant_id)
        key = spec.dedupe_key()
        if key in seen_knobs:
            continue
        seen_knobs.add(key)
        unique.append(spec)
    if limit is not None:
        unique = unique[:max(limit, 1)]
    if not unique:
        raise ValueError("portfolio is empty")
    return unique
