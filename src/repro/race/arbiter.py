"""The race arbiter: deterministic early-kill decisions.

The arbiter is a *pure function of observed series*.  Each variant's
trajectory is deterministic (fixed config + netlist + seed), so the
stream of per-iteration records it emits — and therefore the number of
checkpoints it produces before finishing — is a property of the data,
not of scheduling.  The controller evaluates "round r" only once every
live variant has streamed checkpoint ``r+1`` or finished, which
guarantees that at evaluation time the arbiter can tell *from the data
alone* whether a variant was still mid-flight at checkpoint ``r``.
Kill decisions therefore replay identically regardless of worker
scheduling, poll jitter, or how fast results drain from the pipes.

Rules (first match wins, candidates visited in sorted variant order):

* ``doctor:<name>`` — the convergence doctor, run over the truncated
  prefix, reports a kill-listed pathology (λ-cap saturation, Π plateau,
  Π oscillation) at warning severity or worse,
* ``stalled-gap`` — the duality gap is still far from the variant's
  finish line and the feasible upper bound has stopped improving,
* ``dominated`` — the variant's best feasible cost trails the current
  leader by more than a margin after the grace period.

A kill never reduces the number of potential result producers (finished
variants + surviving runners) below ``min_survivors``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..diagnostics import diagnose
from ..telemetry import MetricsRegistry

__all__ = [
    "KillDecision",
    "RaceArbiter",
    "TRACKED_SERIES",
    "VariantView",
    "pick_winner",
]

#: Per-iteration series streamed from race workers to the controller.
TRACKED_SERIES = ("lam", "pi", "phi_lower", "phi_upper",
                  "overflow_percent")


@dataclass(frozen=True)
class KillDecision:
    """One deterministic early-kill verdict."""

    variant_id: str
    rule: str                # "doctor:<name>" | "stalled-gap" | "dominated"
    round: int               # checkpoint round the evidence was read at
    iteration: int           # last iteration included in the evidence
    reason: str              # one-line human statement

    def to_json(self) -> dict[str, Any]:
        return {"variant_id": self.variant_id, "rule": self.rule,
                "round": self.round, "iteration": self.iteration,
                "reason": self.reason}


@dataclass
class _ConfigShim:
    """The doctor only reads these two knobs off a config."""

    lambda_growth_cap: float
    gap_tol: float


@dataclass
class VariantView:
    """The controller-side accumulation of one variant's stream.

    ``checkpoint_marks[r-1]`` is the number of per-iteration records
    included up to and including checkpoint ``r`` — truncating a series
    to a round is a slice, which is what makes replay from recorded
    series trivial.
    """

    variant_id: str
    gap_tol: float = 0.08
    gap_tolerance: float | None = None
    lambda_growth_cap: float = 2.0
    iterations: list[int] = field(default_factory=list)
    series: dict[str, list[float]] = field(
        default_factory=lambda: {name: [] for name in TRACKED_SERIES})
    checkpoint_marks: list[int] = field(default_factory=list)
    finished: bool = False
    stop_reason: str = ""
    final_phi_upper: float | None = None

    @property
    def checkpoints(self) -> int:
        return len(self.checkpoint_marks)

    @property
    def gap_target(self) -> float:
        """The variant's own finish line for the relative gap."""
        return self.gap_tolerance if self.gap_tolerance is not None \
            else self.gap_tol

    def _extend(self, iterations: list[int],
                series: Mapping[str, list[float]]) -> None:
        if iterations and self.iterations \
                and iterations[0] <= self.iterations[-1]:
            raise ValueError(
                f"{self.variant_id}: non-monotonic iteration stream "
                f"({iterations[0]} after {self.iterations[-1]})")
        self.iterations.extend(int(i) for i in iterations)
        for name in TRACKED_SERIES:
            values = series.get(name, ())
            if len(values) != len(iterations):
                raise ValueError(
                    f"{self.variant_id}: series {name!r} has "
                    f"{len(values)} values for {len(iterations)} "
                    "iterations")
            self.series[name].extend(float(v) for v in values)

    def record_checkpoint(self, iterations: list[int],
                          series: Mapping[str, list[float]]) -> None:
        """Fold one incremental checkpoint message into the view."""
        self._extend(iterations, series)
        self.checkpoint_marks.append(len(self.iterations))

    def record_finish(self, stop_reason: str,
                      iterations: list[int] | None = None,
                      series: Mapping[str, list[float]] | None = None,
                      ) -> None:
        """Mark the variant finished (folding any final tail records)."""
        if iterations:
            self._extend(iterations, series or {})
        self.finished = True
        self.stop_reason = stop_reason
        if self.series["phi_upper"]:
            self.final_phi_upper = self.series["phi_upper"][-1]

    def reset(self) -> None:
        """Forget everything (crash retry: the rerun re-streams)."""
        self.iterations.clear()
        for values in self.series.values():
            values.clear()
        self.checkpoint_marks.clear()
        self.finished = False
        self.stop_reason = ""
        self.final_phi_upper = None

    # ------------------------------------------------------------------
    # deterministic reads
    # ------------------------------------------------------------------
    def prefix_length(self, round_no: int) -> int:
        return self.checkpoint_marks[round_no - 1]

    def prefix_iteration(self, round_no: int) -> int:
        """Last iteration included in the round's evidence."""
        return self.iterations[self.prefix_length(round_no) - 1]

    def prefix_series(self, name: str, round_no: int) -> list[float]:
        return self.series[name][:self.prefix_length(round_no)]

    def prefix_registry(self, round_no: int) -> MetricsRegistry:
        """The truncated prefix as a registry the doctor can read."""
        registry = MetricsRegistry()
        n = self.prefix_length(round_no)
        for name in TRACKED_SERIES:
            out = registry.series(name)
            for iteration, value in zip(self.iterations[:n],
                                        self.series[name][:n]):
                out.record(iteration, value)
        return registry

    def relative_gap(self, round_no: int) -> float:
        ub = self.prefix_series("phi_upper", round_no)[-1]
        lb = self.prefix_series("phi_lower", round_no)[-1]
        if ub <= 0:
            return 0.0
        return max(ub - lb, 0.0) / ub

    def best_phi_upper(self, round_no: int | None = None) -> float:
        """Best (minimum) feasible cost seen; full series when
        ``round_no`` is None (finished variants)."""
        values = self.series["phi_upper"] if round_no is None \
            else self.prefix_series("phi_upper", round_no)
        return min(values) if values else float("inf")

    def best_phi_upper_upto(self, round_no: int) -> float:
        """Best feasible cost over at most ``round_no`` checkpoints.

        Clamps to the checkpoints the variant actually produced, so a
        variant that finished early is compared at the same evidence
        horizon as everyone else — never by its (later) converged tail.
        """
        horizon = min(round_no, self.checkpoints)
        if horizon <= 0:
            return float("inf")
        return self.best_phi_upper(horizon)

    def to_snapshot(self) -> dict[str, Any]:
        """JSON round-trip (test replay + promotion of killed partials)."""
        return {
            "variant_id": self.variant_id,
            "gap_tol": self.gap_tol,
            "gap_tolerance": self.gap_tolerance,
            "lambda_growth_cap": self.lambda_growth_cap,
            "iterations": list(self.iterations),
            "series": {k: list(v) for k, v in self.series.items()},
            "checkpoint_marks": list(self.checkpoint_marks),
            "finished": self.finished,
            "stop_reason": self.stop_reason,
        }

    @classmethod
    def from_snapshot(cls, doc: Mapping[str, Any]) -> "VariantView":
        view = cls(
            variant_id=doc["variant_id"],
            gap_tol=float(doc.get("gap_tol", 0.08)),
            gap_tolerance=doc.get("gap_tolerance"),
            lambda_growth_cap=float(doc.get("lambda_growth_cap", 2.0)),
        )
        view.iterations = [int(i) for i in doc["iterations"]]
        view.series = {name: [float(v) for v in
                              doc["series"].get(name, [])]
                       for name in TRACKED_SERIES}
        view.checkpoint_marks = [int(m) for m in doc["checkpoint_marks"]]
        if doc.get("finished"):
            view.finished = True
            view.stop_reason = doc.get("stop_reason", "")
            if view.series["phi_upper"]:
                view.final_phi_upper = view.series["phi_upper"][-1]
        return view


@dataclass(frozen=True)
class RaceArbiter:
    """Deterministic kill policy over variant views.

    All thresholds are data-relative (fractions, margins, checkpoint
    counts), never wall-clock, so the same recorded series always
    reproduce the same decisions.
    """

    #: No kills before this many checkpoint rounds have been observed.
    grace_checkpoints: int = 3
    #: Doctor finding names that justify a kill at >= warning severity.
    #: Deliberately excludes ``pi-oscillation``: a healthy mid-flight
    #: prefix has a high, noisy Pi (it only decays near the end), so
    #: that post-mortem rule misreads live evidence.
    doctor_kill_names: tuple[str, ...] = (
        "lambda-cap-saturation", "pi-plateau")
    #: Minimum per-iteration records before a doctor verdict is trusted.
    #: The λ cap is *meant* to bind for the first few iterations (the
    #: additive term of Formula (12) takes over later), so a short
    #: prefix looks 100% capped on every healthy run — D1 evidence only
    #: means something once the handover had a fair chance to happen.
    doctor_min_points: int = 12
    #: ``stalled-gap``: gap still above ``gap_factor * gap_target`` ...
    gap_factor: float = 2.0
    #: ... and best phi_upper improved less than this fraction over the
    #: last ``stall_window`` checkpoints.
    stall_window: int = 3
    stall_improvement: float = 0.02
    #: ``dominated``: best phi_upper trails the leader by this factor.
    dominance_margin: float = 1.5
    #: Never reduce finished + surviving runners below this.
    min_survivors: int = 1

    def decide(self, round_no: int,
               views: Mapping[str, VariantView]) -> list[KillDecision]:
        """Kill decisions for one checkpoint round.

        ``views`` holds every variant still in the race (killed and
        crashed ones excluded by the caller).  A variant is a *candidate*
        iff its stream proves it was still mid-flight at checkpoint
        ``round_no`` — it produced at least ``round_no + 1`` checkpoints,
        or finished after the round's last included iteration.
        """
        if round_no < self.grace_checkpoints:
            return []
        candidates = []
        for vid in sorted(views):
            view = views[vid]
            if view.checkpoints <= round_no and not view.finished:
                # The controller evaluates rounds only once settled;
                # treat an unsettled view as non-candidate (pure replay
                # over partial recordings hits this, live races do not).
                continue
            if view.checkpoints < round_no:
                continue  # finished before reaching this round: immune
            if view.finished and view.checkpoints == round_no:
                # Its last checkpoint IS the round: it finished there,
                # nothing was left to kill.
                continue
            candidates.append(vid)

        # The leader is the best feasible cost any in-race variant
        # reached *within the round's evidence horizon* — a variant
        # that already finished is still read at the same horizon, or
        # early prefixes would be judged against converged tails.
        leader = float("inf")
        for view in views.values():
            leader = min(leader, view.best_phi_upper_upto(round_no))

        finished_count = sum(1 for view in views.values() if view.finished)
        survivors = finished_count + len(
            [vid for vid in views
             if not views[vid].finished])

        decisions: list[KillDecision] = []
        for vid in candidates:
            view = views[vid]
            if view.finished and view.checkpoints == round_no:
                continue
            if survivors - 1 < self.min_survivors:
                break
            verdict = self._judge(round_no, view, leader)
            if verdict is not None:
                decisions.append(verdict)
                survivors -= 1
        return decisions

    # ------------------------------------------------------------------
    def _judge(self, round_no: int, view: VariantView,
               leader: float) -> KillDecision | None:
        iteration = view.prefix_iteration(round_no)

        finding = self._doctor_verdict(round_no, view)
        if finding is not None:
            return KillDecision(
                variant_id=view.variant_id,
                rule=f"doctor:{finding.name}", round=round_no,
                iteration=iteration, reason=finding.summary)

        stall = self._stalled_gap(round_no, view)
        if stall is not None:
            return KillDecision(
                variant_id=view.variant_id, rule="stalled-gap",
                round=round_no, iteration=iteration, reason=stall)

        best = view.best_phi_upper(round_no)
        if leader > 0 and best > self.dominance_margin * leader:
            return KillDecision(
                variant_id=view.variant_id, rule="dominated",
                round=round_no, iteration=iteration,
                reason=(f"best feasible cost {best:.4g} trails the "
                        f"leader ({leader:.4g}) by more than "
                        f"x{self.dominance_margin:g}"))
        return None

    def _doctor_verdict(self, round_no: int, view: VariantView):
        if view.prefix_length(round_no) < self.doctor_min_points:
            return None
        registry = view.prefix_registry(round_no)
        diagnosis = diagnose(
            registry,
            config=_ConfigShim(lambda_growth_cap=view.lambda_growth_cap,
                               gap_tol=view.gap_tol),
        )
        for finding in diagnosis.findings:
            if finding.name in self.doctor_kill_names \
                    and finding.severity in ("warning", "critical"):
                return finding
        return None

    def _stalled_gap(self, round_no: int,
                     view: VariantView) -> str | None:
        if round_no <= self.stall_window:
            return None
        gap = view.relative_gap(round_no)
        if gap <= self.gap_factor * view.gap_target:
            return None
        best_now = view.best_phi_upper(round_no)
        best_then = view.best_phi_upper(round_no - self.stall_window)
        if best_then <= 0 or best_now == float("inf"):
            return None
        improvement = (best_then - best_now) / best_then
        if improvement >= self.stall_improvement:
            return None
        return (f"gap {gap:.3f} is still > {self.gap_factor:g}x the "
                f"{view.gap_target:.3f} target and the feasible cost "
                f"improved only {100 * improvement:.2f}% over the last "
                f"{self.stall_window} checkpoints")


def pick_winner(views: Mapping[str, VariantView]) -> str | None:
    """The finished variant with the lowest final feasible cost.

    Ties break lexicographically on variant id, so the winner is a pure
    function of the recorded series too.
    """
    best: tuple[float, str] | None = None
    for vid in sorted(views):
        view = views[vid]
        if not view.finished or view.final_phi_upper is None:
            continue
        key = (view.final_phi_upper, vid)
        if best is None or key < best:
            best = key
    return best[1] if best is not None else None
