"""Portfolio racing: run config/seed variants concurrently, early-kill
losers on convergence-doctor evidence, auto-tune, promote the winner.

The subsystem turns the PR 5 flight recorder from post-mortem
diagnostics into live control (ROADMAP item 5):

* :mod:`repro.race.portfolio` — expand a base config into variants
  (seeds, Coloquinte-style effort presets, named knob overrides),
* :mod:`repro.race.worker` — one variant per crash-isolated process,
  streaming checkpoint series over a pipe, sharing one prebuilt
  :class:`~repro.models.assembly.AssemblyPlan` across fork children,
* :mod:`repro.race.arbiter` — deterministic kill decisions: a pure
  function of the observed per-variant series prefixes, so a race
  replays identically regardless of scheduling or poll jitter,
* :mod:`repro.race.tuner` — map doctor suggested-knob findings to
  config deltas and re-queue tuned variants within a budget,
* :mod:`repro.race.controller` — the race executor/poll loop,
* :mod:`repro.race.promotion` — land the full portfolio in the
  :mod:`repro.runs` registry with a ``diff_runs``-based justification.
"""

from .arbiter import KillDecision, RaceArbiter, VariantView, pick_winner
from .controller import RaceController, RaceResult, VariantOutcome
from .portfolio import VariantSpec, build_portfolio
from .promotion import promote
from .tuner import AutoTuner

__all__ = [
    "AutoTuner",
    "KillDecision",
    "RaceArbiter",
    "RaceController",
    "RaceResult",
    "VariantOutcome",
    "VariantSpec",
    "VariantView",
    "build_portfolio",
    "pick_winner",
    "promote",
]
