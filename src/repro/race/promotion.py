"""Winner promotion: land the full portfolio in the runs registry.

Every variant — winner, finishers, early kills, even crashes — is
archived as its own run so a race is auditable after the fact: the
killed losers' partial series are exactly what the arbiter saw when it
pulled the trigger.  The winner's run directory additionally gets a
``promotion.json`` / ``promotion.md`` justification built from
:func:`repro.runs.diff_runs` comparisons against every rival, so "why
did this config win" is answered with series deltas, not vibes.
"""

from __future__ import annotations

import json
import os
from typing import Any

from ..runs import RunRegistry, diff_runs
from ..telemetry import MetricsRegistry
from .arbiter import TRACKED_SERIES, VariantView
from .controller import RaceResult, VariantOutcome

__all__ = ["promote"]


def _registry_for(outcome: VariantOutcome,
                  view: VariantView) -> MetricsRegistry:
    """The best available metrics registry for one variant.

    Finished variants shipped their full registry back; everyone else
    is reconstructed from the series the controller accumulated before
    the kill/crash — a faithful record of the evidence.
    """
    if outcome.metrics is not None:
        registry = MetricsRegistry.from_dict(outcome.metrics)
    else:
        registry = MetricsRegistry()
        for name in TRACKED_SERIES:
            series = registry.series(name)
            for iteration, value in zip(view.iterations,
                                        view.series[name]):
                series.record(iteration, value)
    registry.meta["stop_reason"] = outcome.stop_reason \
        or registry.meta.get("stop_reason", "")
    registry.meta["race_variant"] = outcome.spec.variant_id
    registry.meta["race_status"] = outcome.status
    if outcome.kill is not None:
        registry.meta["race_kill_rule"] = outcome.kill.rule
    return registry


def _write(path: str, text: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def promote(result: RaceResult, registry_root: str, *,
            name: str = "race") -> dict[str, Any]:
    """Archive a race's portfolio; returns the promotion summary.

    The summary maps every variant to its run directory, carries the
    winner's id/run, and embeds the per-rival diff justification.
    """
    registry = RunRegistry(registry_root)
    registries: dict[str, MetricsRegistry] = {}
    run_dirs: dict[str, str] = {}

    for vid in sorted(result.outcomes):
        outcome = result.outcomes[vid]
        view = result.views.get(vid, VariantView(variant_id=vid))
        metrics = _registry_for(outcome, view)
        registries[vid] = metrics
        extra = {"race": dict(outcome.to_json(),
                              winner=(vid == result.winner))}
        # The merged race trace (one Chrome document spanning every
        # worker lane) lands with the winner, where auditors look.
        trace_doc = result.trace if vid == result.winner else None
        run_dirs[vid] = registry.capture(
            metrics, name=f"{name}-{vid}", manifest_extra=extra,
            trace_doc=trace_doc)

    justification: dict[str, Any] = {
        "winner": result.winner,
        "rounds": result.rounds,
        "wall_seconds": result.wall_seconds,
        "tuned": list(result.tuned),
        "decisions": [d.to_json() for d in result.decisions],
        "rivals": {},
    }
    lines = [f"# Race promotion: {result.winner or 'no winner'}", ""]
    if result.winner is not None:
        winner_metrics = registries[result.winner]
        winner_out = result.outcomes[result.winner]
        lines += [
            f"Winner `{result.winner}` finished in "
            f"{winner_out.iterations} iterations "
            f"(stop: {winner_out.stop_reason or 'n/a'}, "
            f"HPWL {winner_out.hpwl_upper:.6g})." if
            winner_out.hpwl_upper is not None else
            f"Winner `{result.winner}` finished in "
            f"{winner_out.iterations} iterations.",
            "",
        ]
        for vid in sorted(registries):
            if vid == result.winner:
                continue
            diff = diff_runs(winner_metrics, registries[vid],
                             label_a=result.winner, label_b=vid)
            justification["rivals"][vid] = {
                "status": result.outcomes[vid].status,
                "diff": diff.to_json(),
            }
            status = result.outcomes[vid].status
            kill = result.outcomes[vid].kill
            why = f"killed by `{kill.rule}` at round {kill.round}" \
                if kill is not None else status
            lines.append(f"## vs `{vid}` ({why})")
            lines.append("")
            lines.append("```")
            lines.append(diff.render())
            lines.append("```")
            lines.append("")

        winner_dir = run_dirs[result.winner]
        _write(os.path.join(winner_dir, "promotion.json"),
               json.dumps(justification, indent=2, sort_keys=True))
        _write(os.path.join(winner_dir, "promotion.md"),
               "\n".join(lines))

    return {
        "winner": result.winner,
        "winner_run_dir": run_dirs.get(result.winner or ""),
        "run_dirs": run_dirs,
        "justification": justification,
    }
