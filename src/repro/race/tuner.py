"""Auto-tuner: turn a kill verdict into a corrected re-entry.

When the arbiter kills a variant on doctor evidence, the tuner maps the
diagnosed pathology to a concrete config delta — the same knob
adjustments the doctor's textual suggestions describe — and re-queues a
tuned copy, within a per-race budget.  Tuned variants carry their
lineage (``parent``, ``origin="tuned"``) and are deduplicated against
every knob set already raced, so the tuner can never spin on a config
it has already tried.

All of it is deterministic: the delta depends only on the kill rule and
the killed variant's effective knobs, and tuned ids are assigned in
kill order (``<parent>-t<n>``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.config import ComPLxConfig
from .arbiter import KillDecision
from .portfolio import VariantSpec

__all__ = ["AutoTuner"]


@dataclass
class AutoTuner:
    """Map kill rules to config deltas, within a budget.

    ``budget`` caps how many tuned variants one race may enqueue in
    total; the controller asks for at most one per kill.
    """

    budget: int = 2
    _spent: int = field(default=0, init=False, repr=False)
    _seen: set[tuple] = field(default_factory=set, init=False, repr=False)

    @property
    def spent(self) -> int:
        return self._spent

    def register(self, spec: VariantSpec) -> None:
        """Record a knob set already in the race (dedupe target)."""
        self._seen.add(spec.dedupe_key())

    def propose(self, spec: VariantSpec, decision: KillDecision,
                base: ComPLxConfig) -> VariantSpec | None:
        """A tuned replacement for a killed variant, or None.

        None when the budget is spent, the rule has no known fix, or
        the fixed knob set was already raced.
        """
        if self._spent >= self.budget:
            return None
        delta = self._delta_for(decision.rule, spec.config(base))
        if not delta:
            return None
        tuned = VariantSpec(
            variant_id=f"{spec.variant_id}-t{self._spent + 1}",
            overrides={**spec.effective_overrides(), **delta},
            effort=None,  # preset already folded into the overrides
            parent=spec.variant_id,
            origin="tuned",
        )
        key = tuned.dedupe_key()
        if key in self._seen:
            return None
        self._seen.add(key)
        self._spent += 1
        return tuned

    # ------------------------------------------------------------------
    def _delta_for(self, rule: str,
                   current: ComPLxConfig) -> dict[str, Any]:
        """The config delta that addresses one kill rule.

        Mirrors the doctor's suggestions: D1 (λ cap saturation) slows
        the multiplier schedule, D2 plateau refines the assignment more
        often, D2 oscillation damps the growth cap, a stalled gap gets
        a gentler λ push plus tighter CG solves.
        """
        if rule == "doctor:lambda-cap-saturation":
            delta: dict[str, Any] = {
                "lambda_h_factor": round(current.lambda_h_factor * 0.5, 12),
            }
            if current.lambda_mode != "complx":
                delta["lambda_mode"] = "complx"
            return delta
        if rule == "doctor:pi-plateau":
            return {"refine_every": max(1, current.refine_every // 2),
                    "init_sweeps": current.init_sweeps + 1}
        if rule == "doctor:pi-oscillation":
            return {"lambda_growth_cap":
                    round(max(1.0 + (current.lambda_growth_cap - 1.0) * 0.5,
                              1.1), 12)}
        if rule == "stalled-gap":
            return {"lambda_h_factor": round(current.lambda_h_factor * 0.7, 12),
                    "cg_tol": current.cg_tol * 0.1}
        # "dominated" and unknown rules: the config is simply worse,
        # there is nothing principled to fix.
        return {}
