"""``python -m repro.race`` — race a config portfolio (or run the smoke).

Examples::

    python -m repro.race --cells 200 --seeds 1 2 3 --efforts 3 5 7
    python -m repro.race --suite small --efforts 1 5 9 --registry-root runs
    python -m repro.race --smoke --registry-root race-smoke-runs
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from .arbiter import RaceArbiter
from .controller import RaceController
from .portfolio import build_portfolio
from .promotion import promote
from .tuner import AutoTuner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.race",
        description="portfolio racing: run config variants concurrently, "
                    "early-kill losers on doctor evidence, promote the "
                    "winner",
    )
    workload = parser.add_mutually_exclusive_group()
    workload.add_argument("--cells", type=int, default=200,
                          help="synthetic workload size (default 200)")
    workload.add_argument("--suite", default=None,
                          help="race a named workload-suite design instead")
    parser.add_argument("--workload-seed", type=int, default=7,
                        help="synthetic workload seed")
    parser.add_argument("--seeds", type=int, nargs="*", default=[],
                        help="placer seeds to race (one variant each)")
    parser.add_argument("--efforts", type=int, nargs="*", default=[],
                        help="effort presets 1..9 to race (one each)")
    parser.add_argument("--set", dest="base_set", action="append",
                        default=[], metavar="KNOB=VALUE",
                        help="base config override folded into every "
                             "variant (repeatable)")
    parser.add_argument("--no-base", action="store_true",
                        help="do not race the unmodified base config")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="concurrent variant processes")
    parser.add_argument("--checkpoint-every", type=int, default=1,
                        help="iterations per streamed checkpoint")
    parser.add_argument("--tune-budget", type=int, default=2,
                        help="max tuned re-entries per race")
    parser.add_argument("--grace", type=int, default=3,
                        help="checkpoint rounds before kills may fire")
    parser.add_argument("--registry-root", default="race-runs",
                        help="run-registry root for winner promotion")
    parser.add_argument("--no-promote", action="store_true",
                        help="skip archiving the portfolio")
    parser.add_argument("--trace", action="store_true",
                        help="stream worker telemetry frames and merge "
                             "one Chrome trace for the whole race")
    parser.add_argument("--json", action="store_true",
                        help="print the race result as JSON")
    parser.add_argument("--smoke", action="store_true",
                        help="run the end-to-end self-test and exit")
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def _parse_sets(pairs: list[str]) -> dict[str, object]:
    out: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set needs KNOB=VALUE, got {pair!r}")
        knob, raw = pair.split("=", 1)
        try:
            out[knob] = json.loads(raw)
        except json.JSONDecodeError:
            out[knob] = raw
    return out


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    if args.smoke:
        from .smoke import SmokeFailure, run_smoke

        try:
            return run_smoke(registry_root=args.registry_root,
                             trace=args.trace)
        except SmokeFailure as exc:
            print(f"race smoke FAILED: {exc}", file=sys.stderr)
            return 1

    if args.suite:
        workload = {"kind": "suite", "suite": args.suite}
    else:
        workload = {"kind": "synthetic", "num_cells": args.cells,
                    "seed": args.workload_seed}
    try:
        portfolio = build_portfolio(
            seeds=tuple(args.seeds),
            efforts=tuple(args.efforts),
            base_overrides=_parse_sets(args.base_set),
            include_base=not args.no_base,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    controller = RaceController(
        portfolio,
        workload=workload,
        arbiter=RaceArbiter(grace_checkpoints=args.grace),
        tuner=AutoTuner(budget=args.tune_budget),
        checkpoint_every=args.checkpoint_every,
        max_workers=args.max_workers,
        trace=args.trace,
    )
    result = controller.execute()

    if not args.no_promote:
        summary = promote(result, args.registry_root)
        if result.winner:
            print(f"winner {result.winner} promoted to "
                  f"{summary['winner_run_dir']}")

    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        for vid, outcome in sorted(result.outcomes.items()):
            mark = "*" if vid == result.winner else " "
            detail = outcome.stop_reason or outcome.error or ""
            hpwl = f" hpwl={outcome.hpwl_upper:.6g}" \
                if outcome.hpwl_upper is not None else ""
            print(f"{mark} {vid:<16} {outcome.status:<9} "
                  f"iters={outcome.iterations:<4}{hpwl}  {detail}")
        print(f"rounds={result.rounds} kills={len(result.decisions)} "
              f"tuned={','.join(result.tuned) or 'none'} "
              f"wall={result.wall_seconds:.2f}s")
    return 0 if result.winner else 1


if __name__ == "__main__":
    sys.exit(main())
