"""The race controller: run a portfolio concurrently, arbitrate, tune.

One single-threaded poll loop owns all state — worker pipes are drained
with :func:`multiprocessing.connection.wait`, so there are no threads
and no locks.  The loop enforces the *round barrier* the arbiter's
replay guarantee rests on: checkpoint round ``r`` is evaluated only
once every variant still in the race has either streamed checkpoint
``r + 1`` or finished.  At that point the data alone proves whether a
variant was still mid-flight at checkpoint ``r``, so the arbiter's
verdicts are independent of scheduling, poll jitter, and how fast
results drain from the pipes.

Kill decisions are applied in the arbiter's deterministic order; a
variant whose result sneaks in after its kill verdict is *still*
recorded as killed (the result is dropped), because the verdict — not
the message race — is the ground truth.  Crashed workers get exactly
one retry (their trajectory is deterministic, so the rerun re-streams
identical series); deterministic errors are terminal.

Wall-clock times appear in :class:`RaceResult` for reporting only —
they never feed a decision.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any

from ..core import ComPLxConfig
from ..models.assembly import PLANNABLE_MODELS, AssemblyPlan
from ..netlist import Netlist
from ..serve.worker import CRASH_EXIT_CODE, build_netlist
from ..telemetry import TraceContext, TraceMerger
from .arbiter import KillDecision, RaceArbiter, VariantView, pick_winner
from .portfolio import VariantSpec
from .tuner import AutoTuner
from .worker import clear_shared, race_worker_entry, share_prebuilt

__all__ = ["RaceController", "RaceResult", "VariantOutcome"]

logger = logging.getLogger(__name__)

_POLL_SECONDS = 0.05


@dataclass
class VariantOutcome:
    """Terminal record of one variant's race."""

    spec: VariantSpec
    status: str                     # finished | killed | crashed | error
    kill: KillDecision | None = None
    iterations: int = 0
    stop_reason: str = ""
    hpwl_upper: float | None = None
    placement: dict[str, list[float]] | None = None
    metrics: dict[str, Any] | None = None
    error: str | None = None
    retried: bool = False
    wall_seconds: float = 0.0       # reporting only, never decisions

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "variant_id": self.spec.variant_id,
            "origin": self.spec.origin,
            "parent": self.spec.parent,
            "effort": self.spec.effort,
            "overrides": dict(self.spec.overrides),
            "status": self.status,
            "iterations": self.iterations,
            "stop_reason": self.stop_reason,
            "hpwl_upper": self.hpwl_upper,
            "retried": self.retried,
            "wall_seconds": self.wall_seconds,
        }
        if self.kill is not None:
            doc["kill"] = self.kill.to_json()
        if self.error is not None:
            doc["error"] = self.error
        return doc


@dataclass
class RaceResult:
    """What a race produced, in full."""

    winner: str | None
    outcomes: dict[str, VariantOutcome]
    views: dict[str, VariantView]
    decisions: list[KillDecision] = field(default_factory=list)
    tuned: list[str] = field(default_factory=list)
    rounds: int = 0
    wall_seconds: float = 0.0
    #: Merged Chrome-trace document (``trace=True`` races only); kept
    #: out of ``to_json`` — it is an artifact, not a summary.
    trace: dict[str, Any] | None = None

    @property
    def winner_outcome(self) -> VariantOutcome | None:
        return self.outcomes.get(self.winner) if self.winner else None

    def to_json(self) -> dict[str, Any]:
        return {
            "winner": self.winner,
            "rounds": self.rounds,
            "wall_seconds": self.wall_seconds,
            "tuned": list(self.tuned),
            "decisions": [d.to_json() for d in self.decisions],
            "outcomes": {vid: out.to_json()
                         for vid, out in sorted(self.outcomes.items())},
        }


class _Runner:
    """Parent-side handle for one live worker process."""

    def __init__(self, spec: VariantSpec, process: mp.Process,
                 conn, started_at: float,
                 was_retry: bool = False) -> None:
        self.spec = spec
        self.process = process
        self.conn = conn
        self.started_at = started_at
        self.span_start = time.perf_counter()
        self.was_retry = was_retry
        self.terminal = False   # result or error already drained

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)


class RaceController:
    """Execute a portfolio race over crash-isolated workers."""

    def __init__(
        self,
        portfolio: list[VariantSpec],
        *,
        netlist: Netlist | None = None,
        workload: dict[str, Any] | None = None,
        aux_root: str | None = None,
        base_config: ComPLxConfig | None = None,
        base_overrides: dict[str, Any] | None = None,
        arbiter: RaceArbiter | None = None,
        tuner: AutoTuner | None = None,
        checkpoint_every: int = 1,
        max_workers: int | None = None,
        start_method: str | None = None,
        inject: dict[str, dict[str, Any]] | None = None,
        trace: bool = False,
    ) -> None:
        if not portfolio:
            raise ValueError("portfolio is empty")
        if netlist is None and workload is None:
            raise ValueError("need a netlist or a workload descriptor")
        self.portfolio = list(portfolio)
        self.netlist = netlist
        self.workload = dict(workload) if workload else None
        self.aux_root = aux_root
        self.base_overrides = dict(base_overrides or {})
        self.base_config = base_config if base_config is not None \
            else ComPLxConfig(**self.base_overrides)
        self.arbiter = arbiter if arbiter is not None else RaceArbiter()
        self.tuner = tuner if tuner is not None else AutoTuner()
        self.checkpoint_every = max(int(checkpoint_every), 1)
        self.max_workers = max_workers if max_workers is not None \
            else max((os.cpu_count() or 2) - 1, 2)
        self._ctx = mp.get_context(start_method) if start_method \
            else mp.get_context()
        # Chaos hook: variant_id -> serve-style ``_inject`` descriptor,
        # armed on the first spawn only (retries run clean) unless the
        # descriptor sets ``persist``.
        self.inject = dict(inject or {})

        self.trace = bool(trace)
        self.merger: TraceMerger | None = None
        #: Worker label -> stable Chrome-trace pid.  Allocation follows
        #: spawn order, which the round barrier makes deterministic.
        self._lanes: dict[str, int] = {}

        self.views: dict[str, VariantView] = {}
        self.outcomes: dict[str, VariantOutcome] = {}
        self.decisions: list[KillDecision] = []
        self.tuned: list[str] = []
        self._specs: dict[str, VariantSpec] = {}

    # ------------------------------------------------------------------
    # Named ``execute`` (not ``run``) so statcheck's conservative
    # duck-typed call resolution cannot confuse it with unrelated
    # ``.run()`` protocol methods; the controller is single-threaded.
    def execute(self) -> RaceResult:
        started = time.monotonic()
        if self.netlist is None:
            self.netlist = build_netlist(self.workload or {}, self.aux_root)
        if self.trace:
            context = TraceContext(trace_id=f"race:{self.netlist.name}",
                                   parent_span="race")
            self.merger = TraceMerger(context, process_name="race")
        plan = self._prebuild_plan()
        share_prebuilt(self.netlist, plan)
        try:
            result = self._race_loop(started)
        finally:
            clear_shared()
        if self.merger is not None:
            result.trace = self.merger.chrome_trace()
        return result

    def _prebuild_plan(self) -> AssemblyPlan | None:
        """One shared plan when the base model can use it."""
        model = self.base_config.net_model
        if model not in PLANNABLE_MODELS:
            return None
        assert self.netlist is not None
        row_h = self.netlist.core.row_height
        eps = max(self.base_config.b2b_eps_rows * row_h, 1e-9)
        return AssemblyPlan(self.netlist, model=model, eps=eps)

    def _make_view(self, spec: VariantSpec) -> VariantView:
        config = spec.config(self.base_config)
        return VariantView(
            variant_id=spec.variant_id,
            gap_tol=config.gap_tol,
            gap_tolerance=config.gap_tolerance,
            lambda_growth_cap=config.lambda_growth_cap,
        )

    def _lane_for(self, label: str) -> int:
        lane = self._lanes.get(label)
        if lane is None:
            lane = self._lanes[label] = 2 + len(self._lanes)
        return lane

    def _spawn(self, spec: VariantSpec, now: float,
               was_retry: bool = False) -> _Runner:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        payload = {
            "variant": {
                "variant_id": spec.variant_id,
                "overrides": dict(spec.overrides),
                "effort": spec.effort,
                "parent": spec.parent,
                "origin": spec.origin,
            },
            "base_overrides": dict(self.base_overrides),
            "workload": self.workload or {},
            "aux_root": self.aux_root,
            "checkpoint_every": self.checkpoint_every,
        }
        fault = self.inject.get(spec.variant_id)
        if fault is not None and (not was_retry or fault.get("persist")):
            payload["_inject"] = dict(fault)
        if self.merger is not None:
            # A retry gets its own labelled lane so the crashed run's
            # spans stay distinguishable from the rerun's.
            label = f"{spec.variant_id}#retry" if was_retry \
                else spec.variant_id
            payload["trace"] = self.merger.context.child(
                label, lane=self._lane_for(label)).to_wire()
        process = self._ctx.Process(
            target=race_worker_entry, args=(payload, child_conn),
            name=f"race-{spec.variant_id}", daemon=True,
        )
        process.start()
        child_conn.close()
        return _Runner(spec, process, parent_conn, now,
                       was_retry=was_retry)

    # ------------------------------------------------------------------
    def _race_loop(self, started: float) -> RaceResult:
        pending: list[VariantSpec] = list(self.portfolio)
        running: dict[str, _Runner] = {}
        retried: set[str] = set()
        killed: set[str] = set()
        round_no = 0

        for spec in pending:
            self.views[spec.variant_id] = self._make_view(spec)
            self._specs[spec.variant_id] = spec
            self.tuner.register(spec)

        try:
            while pending or running:
                now = time.monotonic()
                while pending and len(running) < self.max_workers:
                    spec = pending.pop(0)
                    running[spec.variant_id] = self._spawn(
                        spec, now,
                        was_retry=spec.variant_id in retried)

                self._drain(running)
                self._reap(running, pending, retried)

                next_round = round_no + 1
                while self._round_settled(next_round, pending, running,
                                          killed):
                    round_no = next_round
                    new_kills = self.arbiter.decide(
                        round_no, self._in_race_views(killed))
                    for decision in new_kills:
                        self._apply_kill(decision, running, pending,
                                         killed)
                    next_round = round_no + 1
                if not (pending or running):
                    break
                connection_wait([r.conn for r in running.values()
                                 if not r.terminal] or [],
                                timeout=_POLL_SECONDS)
        finally:
            for runner in running.values():
                runner.close()

        winner = pick_winner(self._in_race_views(killed))
        wall = time.monotonic() - started
        return RaceResult(
            winner=winner, outcomes=self.outcomes, views=self.views,
            decisions=list(self.decisions), tuned=list(self.tuned),
            rounds=round_no, wall_seconds=wall,
        )

    # ------------------------------------------------------------------
    def _in_race_views(self, killed: set[str]) -> dict[str, VariantView]:
        """Views the arbiter/winner may look at: not killed, not dead."""
        out = {}
        for vid, view in self.views.items():
            if vid in killed:
                continue
            outcome = self.outcomes.get(vid)
            if outcome is not None and outcome.status in ("crashed",
                                                          "error"):
                continue
            out[vid] = view
        return out

    def _round_settled(self, round_no: int, pending: list[VariantSpec],
                       running: dict[str, _Runner],
                       killed: set[str]) -> bool:
        """True once round ``round_no`` is decidable from data alone.

        Every in-race variant must have streamed checkpoint
        ``round_no + 1`` or finished — then each variant's state *at*
        checkpoint ``round_no`` is a property of its trajectory, not of
        message timing.  Pending (not yet started) variants count as
        in-race with zero checkpoints, so rounds simply lag until they
        start; the arbiter sees the same prefixes either way.
        """
        if not (pending or running):
            return False  # race over: no more decisions to make
        views = self._in_race_views(killed)
        unfinished = [v for v in views.values() if not v.finished]
        if not unfinished:
            return False  # nothing left to kill: stop counting rounds
        for view in unfinished:
            if view.checkpoints < round_no + 1:
                return False
        return True

    def _drain(self, running: dict[str, _Runner]) -> None:
        """Pull every queued message off every live pipe."""
        for vid in sorted(running):
            runner = running[vid]
            while not runner.terminal and runner.conn.poll():
                try:
                    kind, body = runner.conn.recv()
                except (EOFError, OSError):
                    break
                self._on_message(runner, kind, body)

    def _trace_variant(self, runner: _Runner, outcome: str) -> None:
        """Close the parent-side span over one worker's lifetime."""
        if self.merger is not None:
            self.merger.add_span(
                f"variant {runner.spec.variant_id}", runner.span_start,
                time.perf_counter(), outcome=outcome,
                retry=runner.was_retry)

    def _on_message(self, runner: _Runner, kind: str,
                    body: dict[str, Any]) -> None:
        vid = runner.spec.variant_id
        view = self.views[vid]
        if kind == "checkpoint":
            view.record_checkpoint(body["iterations"], body["series"])
        elif kind == "telemetry":
            if self.merger is not None:
                self.merger.ingest(body)
        elif kind == "result":
            view.record_finish(body.get("stop_reason", ""),
                               body.get("tail", {}).get("iterations"),
                               body.get("tail", {}).get("series"))
            runner.terminal = True
            self.outcomes[vid] = VariantOutcome(
                spec=runner.spec, status="finished",
                iterations=int(body.get("iterations", 0)),
                stop_reason=body.get("stop_reason", ""),
                hpwl_upper=body.get("hpwl_upper"),
                placement=body.get("placement"),
                metrics=body.get("metrics"),
                retried=runner.was_retry,
                wall_seconds=time.monotonic() - runner.started_at,
            )
            self._trace_variant(runner, "finished")
        elif kind == "error":
            runner.terminal = True
            self.outcomes[vid] = VariantOutcome(
                spec=runner.spec, status="error",
                error=f"{body.get('type')}: {body.get('message')}",
                wall_seconds=time.monotonic() - runner.started_at,
            )
            self._trace_variant(runner, "error")
            logger.warning("race variant %s errored: %s", vid,
                           self.outcomes[vid].error)

    def _reap(self, running: dict[str, _Runner],
              pending: list[VariantSpec], retried: set[str]) -> None:
        """Collect exited workers; classify crashes, retry once."""
        for vid in sorted(running):
            runner = running[vid]
            if runner.process.is_alive():
                continue
            self._drain({vid: runner})  # racing final messages
            del running[vid]
            runner.close()
            if runner.terminal or vid in self.outcomes:
                continue
            # Abnormal exit without a terminal message: a crash.
            code = runner.process.exitcode
            self._trace_variant(runner, "crashed")
            if vid not in retried:
                retried.add(vid)
                self.views[vid].reset()
                logger.warning(
                    "race variant %s crashed (exit %s); retrying once",
                    vid, code)
                pending.insert(0, runner.spec)
                continue
            self.outcomes[vid] = VariantOutcome(
                spec=runner.spec, status="crashed", retried=True,
                error=f"worker exited with status {code} "
                      f"(crash code {CRASH_EXIT_CODE} means a kill)",
                wall_seconds=time.monotonic() - runner.started_at,
            )
            logger.error("race variant %s crashed twice (exit %s); "
                         "out of the race", vid, code)

    def _apply_kill(self, decision: KillDecision,
                    running: dict[str, _Runner],
                    pending: list[VariantSpec],
                    killed: set[str]) -> None:
        vid = decision.variant_id
        killed.add(vid)
        self.decisions.append(decision)
        if self.merger is not None:
            self.merger.add_instant(f"kill {vid}", time.perf_counter(),
                                    rule=decision.rule,
                                    round=decision.round)
        spec = self._specs[vid]
        runner = running.pop(vid, None)
        if runner is not None:
            runner.close()
            self._trace_variant(runner, "killed")
            wall = time.monotonic() - runner.started_at
        else:
            # A result raced in ahead of the verdict; the verdict is
            # ground truth, the result is dropped.
            prior = self.outcomes.get(vid)
            wall = prior.wall_seconds if prior is not None else 0.0
        self.outcomes[vid] = VariantOutcome(
            spec=spec, status="killed", kill=decision,
            iterations=self.views[vid].iterations[-1] + 1
            if self.views[vid].iterations else 0,
            stop_reason=f"killed:{decision.rule}",
            wall_seconds=wall,
        )
        logger.info("race: killed %s at round %d (%s)", vid,
                    decision.round, decision.rule)

        tuned = self.tuner.propose(spec, decision, self.base_config)
        if tuned is not None:
            self.views[tuned.variant_id] = self._make_view(tuned)
            self._specs[tuned.variant_id] = tuned
            self.tuned.append(tuned.variant_id)
            pending.append(tuned)
            logger.info("race: tuned %s -> %s (%s)", vid,
                        tuned.variant_id, tuned.overrides)

