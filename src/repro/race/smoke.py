"""End-to-end self-test of the racing runtime, used by the CI smoke job.

Races four variants on a pinned-seed synthetic micro netlist:

* three honest configs (base, an effort preset, a reseed) that finish
  via the ``gap_tolerance`` early exit,
* one rigged loser running ``lambda_mode="double"`` — the ablation
  schedule that grows λ at its cap by construction, which is exactly
  the pathology doctor rule D1 exists to catch.

Asserts the acceptance criteria of the racing runtime end to end:

1. the arbiter early-kills the loser mid-flight (doctor evidence),
2. the auto-tuner re-queues a corrected copy of the killed config,
3. the promoted winner's placement is **bit-identical** to running the
   same config standalone in this process (shared-plan adoption and
   worker streaming change nothing),
4. the race finishes in less wall-clock than the four standalone runs
   take back to back,
5. the whole portfolio lands in the run registry with a
   ``promotion.md`` justification on the winner.

Returns 0 on success; raises :class:`SmokeFailure` with a specific
message otherwise.  All output goes through :mod:`logging` — the
``__main__`` wrapper owns the exit code and user-facing text.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Any

import numpy as np

from ..core import ComPLxConfig, ComPLxPlacer
from ..serve.worker import build_netlist
from .arbiter import RaceArbiter
from .controller import RaceController, RaceResult
from .portfolio import VariantSpec, build_portfolio
from .promotion import promote
from .tuner import AutoTuner

__all__ = ["SmokeFailure", "run_smoke", "smoke_portfolio"]

logger = logging.getLogger(__name__)

#: Pinned-seed micro netlist every smoke race runs on.  Large enough
#: that iteration compute dominates process/poll overhead — the
#: wall-clock assertion below is meaningless on toy sizes.
SMOKE_WORKLOAD = {"kind": "synthetic", "num_cells": 600, "seed": 7}

#: Knobs every honest variant shares: modest budget, aggressive
#: Coloquinte-style finish line so they exit via ``gap_closed``.
_HONEST = {"max_iterations": 60, "gap_tolerance": 0.15}

#: The rigged loser: the λ-doubling ablation, with the gap/Π exits
#: pinned shut so only the arbiter (or its iteration budget) ends it.
_LOSER = {
    "lambda_mode": "double",
    "max_iterations": 150,
    "gap_tolerance": None,
    "gap_tol": 1e-6,
    "pi_tol_fraction": 1e-9,
}


class SmokeFailure(AssertionError):
    """One smoke assertion failed (the message says which)."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def smoke_portfolio() -> list[VariantSpec]:
    """The pinned four-variant portfolio the smoke race runs."""
    return build_portfolio(
        seeds=(5,),
        efforts=(3, 5),
        variants={"loser": _LOSER},
        base_overrides=_HONEST,
    )


def _standalone(spec: VariantSpec, netlist) -> tuple[Any, float]:
    """Run one variant in-process; returns (result, wall seconds)."""
    config = spec.config(ComPLxConfig())
    placer = ComPLxPlacer(netlist, config)
    begin = time.monotonic()
    result = placer.place()
    return result, time.monotonic() - begin


def _assert_winner_bit_identical(result: RaceResult, netlist) -> None:
    winner = result.outcomes[result.winner or ""]
    _check(winner.placement is not None,
           "winner outcome carries no placement")
    rerun, _ = _standalone(winner.spec, netlist)
    assert winner.placement is not None
    same_x = np.array_equal(
        np.asarray(winner.placement["x"], dtype=np.float64), rerun.upper.x)
    same_y = np.array_equal(
        np.asarray(winner.placement["y"], dtype=np.float64), rerun.upper.y)
    _check(same_x and same_y,
           f"winner {result.winner} placement is not bit-identical to "
           "the standalone rerun of the same config")
    _check(winner.stop_reason == rerun.history.stop_reason,
           f"winner stop reason {winner.stop_reason!r} != standalone "
           f"{rerun.history.stop_reason!r}")


def run_smoke(registry_root: str = "race-smoke-runs",
              trace: bool = False) -> int:
    """The smoke scenario; returns 0 so ``__main__`` can exit with it."""
    portfolio = smoke_portfolio()
    _check(len(portfolio) >= 5,
           f"smoke portfolio shrank to {len(portfolio)} variants")
    netlist = build_netlist(SMOKE_WORKLOAD)

    # gap_factor=1e9 parks the stalled-gap rule so the kill path under
    # test is the doctor's D1 evidence, deterministically.
    controller = RaceController(
        portfolio,
        netlist=netlist,
        workload=SMOKE_WORKLOAD,
        arbiter=RaceArbiter(gap_factor=1e9),
        tuner=AutoTuner(budget=1),
        checkpoint_every=1,
        max_workers=len(portfolio) + 1,
        trace=trace,
    )
    result = controller.execute()
    logger.info("race finished in %.2fs: winner=%s kills=%d tuned=%s",
                result.wall_seconds, result.winner,
                len(result.decisions), result.tuned)

    # 1. the loser was early-killed on doctor evidence, mid-flight.
    _check(len(result.decisions) >= 1, "no variant was early-killed")
    loser = result.outcomes.get("loser")
    _check(loser is not None and loser.status == "killed",
           f"rigged loser was not killed "
           f"(status: {loser.status if loser else 'missing'})")
    assert loser is not None and loser.kill is not None
    _check(loser.kill.rule == "doctor:lambda-cap-saturation",
           f"loser killed by {loser.kill.rule!r}, expected the doctor's "
           "lambda-cap-saturation evidence")
    _check(loser.iterations < _LOSER["max_iterations"],
           "loser ran to its iteration budget — not killed mid-flight")

    # 2. the tuner re-queued a corrected copy that raced to completion.
    _check(result.tuned == ["loser-t1"],
           f"expected one tuned re-entry 'loser-t1', got {result.tuned}")
    tuned = result.outcomes["loser-t1"]
    _check(tuned.spec.overrides.get("lambda_mode") == "complx",
           "tuned variant did not correct the λ schedule mode")
    _check(tuned.status in ("finished", "killed"),
           f"tuned variant ended {tuned.status!r}")

    # 3. the winner finished, and is bit-identical standalone.
    _check(result.winner is not None, "race produced no winner")
    _check(result.outcomes[result.winner or ""].status == "finished",
           "winner is not a finished variant")
    _assert_winner_bit_identical(result, netlist)
    logger.info("winner %s is bit-identical to its standalone rerun",
                result.winner)

    # 4. racing beat running the portfolio back to back.  Concurrency
    # is the whole mechanism, so this only holds with >= 2 cores; on a
    # single-core host the comparison is reported but not enforced.
    standalone_total = 0.0
    for spec in portfolio:
        _, seconds = _standalone(spec, netlist)
        standalone_total += seconds
    if (os.cpu_count() or 1) >= 2:
        _check(result.wall_seconds < standalone_total,
               f"race took {result.wall_seconds:.2f}s, standalone sum "
               f"is {standalone_total:.2f}s — racing did not pay")
        logger.info("race %.2fs vs standalone sum %.2fs",
                    result.wall_seconds, standalone_total)
    else:
        logger.warning(
            "single-core host: wall-clock assertion skipped "
            "(race %.2fs vs standalone sum %.2fs)",
            result.wall_seconds, standalone_total)

    # 5. the full portfolio landed in the registry, winner justified.
    summary = promote(result, registry_root, name="race-smoke")
    _check(set(summary["run_dirs"]) == set(result.outcomes),
           "promotion did not archive every variant")
    winner_dir = summary["winner_run_dir"]
    _check(bool(winner_dir) and os.path.exists(
        os.path.join(winner_dir, "promotion.md")),
           "winner run dir is missing promotion.md")
    _check(os.path.exists(os.path.join(winner_dir, "promotion.json")),
           "winner run dir is missing promotion.json")
    rivals = summary["justification"]["rivals"]
    _check("loser" in rivals,
           "promotion justification does not diff the killed loser")
    logger.info("promoted winner archived at %s", winner_dir)

    # 6. tracing races merge one Chrome trace spanning every worker
    # lane and archive it with the winner.
    if trace:
        _check(result.trace is not None, "tracing race produced no trace")
        assert result.trace is not None
        workers = result.trace["otherData"]["workers"]
        _check(len(workers) >= len(portfolio),
               f"merged trace covers {len(workers)} worker lanes, "
               f"expected >= {len(portfolio)}")
        _check(bool(result.trace["traceEvents"]),
               "merged race trace has no events")
        _check(os.path.exists(os.path.join(winner_dir, "trace.json")),
               "winner run dir is missing the merged trace.json")
        logger.info("merged race trace spans %d worker lanes",
                    len(workers))

    logger.info("race smoke passed")
    return 0
