"""The race worker: one variant's global placement in one process.

Mirrors the :mod:`repro.serve` worker protocol (crash isolation, hard
``os._exit`` on injected crashes, deterministic errors over the pipe)
but streams *checkpoint series* instead of progress events, because the
parent-side arbiter consumes numbers, not prose:

* ``("checkpoint", {...})`` — incremental per-iteration records since
  the previous checkpoint (every ``checkpoint_every`` iterations),
* ``("result", {...})`` — terminal payload: tail records, stop reason,
  the feasible upper placement, and the full metrics registry,
* ``("error", {...})`` — deterministic failure; the controller retries
  only crashes (abnormal exits), never these.

Heavy shared inputs — the netlist and one prebuilt
:class:`~repro.models.assembly.AssemblyPlan` — are published by the
parent via :func:`share_prebuilt` *before* forking, so every variant
inherits them copy-on-write instead of rebuilding per process.  Under
the ``spawn`` start method the globals are absent and the worker falls
back to rebuilding from the workload descriptor; results are identical
either way because plan construction is deterministic.
"""

from __future__ import annotations

import contextlib
import logging
import os
from typing import Any

from .. import telemetry
from ..core import ComPLxConfig, ComPLxPlacer
from ..core.history import RunHistory
from ..faults import SimulatedCrash
from ..models import hpwl
from ..models.assembly import AssemblyPlan, PLANNABLE_MODELS
from ..netlist import Netlist
from ..serve.worker import (CRASH_EXIT_CODE, _install_injected_faults,
                            build_netlist)
from .arbiter import TRACKED_SERIES
from .portfolio import VariantSpec

__all__ = ["clear_shared", "race_worker_entry", "run_variant",
           "share_prebuilt"]

logger = logging.getLogger(__name__)

# Parent-published shared inputs, inherited by fork children.  Keyed so
# a stale publication for a different netlist is never trusted.
_SHARED: dict[str, Any] = {}


def share_prebuilt(netlist: Netlist,
                   plan: AssemblyPlan | None) -> None:
    """Publish the prebuilt netlist/plan for fork children to inherit."""
    _SHARED["netlist"] = netlist
    _SHARED["netlist_name"] = netlist.name
    _SHARED["plan"] = plan


def clear_shared() -> None:
    _SHARED.clear()


def _materialize(payload: dict[str, Any],
                 config: ComPLxConfig) -> tuple[Netlist, AssemblyPlan | None]:
    """The (netlist, adoptable plan) pair for this variant.

    Prefers the parent's pre-fork publication; a plan is only adoptable
    when its (model, eps) matches this variant's config — variants that
    override the net model or eps quietly build their own.
    """
    netlist = _SHARED.get("netlist")
    if netlist is None:
        netlist = build_netlist(payload["workload"],
                                payload.get("aux_root"))
    plan = _SHARED.get("plan")
    if plan is not None and config.net_model in PLANNABLE_MODELS:
        probe = ComPLxPlacer(netlist, config)
        try:
            probe.adopt_plan(plan)
        except ValueError:
            plan = None
    else:
        plan = None
    return netlist, plan


def run_variant(payload: dict[str, Any], conn) -> dict[str, Any]:
    """Run one variant end to end, streaming checkpoints over ``conn``."""
    spec = VariantSpec(**payload["variant"])
    base = ComPLxConfig(**payload.get("base_overrides", {}))
    config = spec.config(base)
    checkpoint_every = max(int(payload.get("checkpoint_every", 1)), 1)
    # Absent "trace" entry -> None -> every shipping site below is
    # skipped; the worker's math and messages are byte-identical.
    trace_ctx = telemetry.TraceContext.from_wire(payload.get("trace"))

    netlist, plan = _materialize(payload, config)

    sent = 0          # per-iteration records already streamed
    ordinal = 0       # checkpoint counter

    def slice_records(history: RunHistory,
                      upto: int) -> dict[str, Any]:
        records = history.records[sent:upto]
        return {
            "iterations": [r.iteration for r in records],
            "series": {name: [float(getattr(r, name)) for r in records]
                       for name in TRACKED_SERIES},
        }

    with contextlib.ExitStack() as stack:
        shipper = None
        if trace_ctx is not None:
            tracer = stack.enter_context(telemetry.tracing())
            shipper = telemetry.TelemetryShipper(trace_ctx, tracer)
        placer = ComPLxPlacer(netlist, config)
        if plan is not None:
            placer.adopt_plan(plan)

        def observer(k: int, history: RunHistory) -> None:
            nonlocal sent, ordinal
            if len(history.records) - sent < checkpoint_every:
                return
            ordinal += 1
            body = slice_records(history, len(history.records))
            body.update(variant_id=spec.variant_id, ordinal=ordinal)
            conn.send(("checkpoint", body))
            sent += len(body["iterations"])
            if shipper is not None:
                frame = shipper.flush_frame()
                if frame is not None:
                    conn.send(("telemetry", frame))

        placer.observer = observer
        result = placer.place()
        if shipper is not None:
            frame = shipper.flush_frame(force=True)
            if frame is not None:
                conn.send(("telemetry", frame))

    tail = slice_records(result.history, len(result.history.records))
    return {
        "variant_id": spec.variant_id,
        "stop_reason": result.history.stop_reason,
        "iterations": result.history.iterations,
        "hpwl_upper": float(hpwl(netlist, result.upper)),
        "tail": tail,
        "metrics": result.metrics.to_dict(),
        "placement": {"x": [float(v) for v in result.upper.x],
                      "y": [float(v) for v in result.upper.y]},
        "netlist": {"name": netlist.name, "cells": netlist.num_cells,
                    "nets": netlist.num_nets},
    }


def race_worker_entry(payload: dict[str, Any], conn) -> None:
    """Process target: run one variant, stream messages, exit."""
    try:
        _install_injected_faults(payload.get("_inject"))
        body = run_variant(payload, conn)
        conn.send(("result", body))
        conn.close()
    except SimulatedCrash:
        # Mirror a SIGKILL: no cleanup, no goodbye on the pipe.
        os._exit(CRASH_EXIT_CODE)
    except Exception as exc:  # deterministic failure -> report, no retry
        logger.exception("race variant %s failed in worker",
                         payload.get("variant", {}).get("variant_id"))
        try:
            conn.send(("error", {"type": type(exc).__name__,
                                 "message": str(exc)}))
            conn.close()
        except OSError:
            pass
