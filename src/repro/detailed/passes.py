"""Detailed placement optimization passes (FastPlace-DP substitute).

Implements the published FastPlace-DP techniques [Pan, Viswanathan, Chu,
ICCAD 2005] on our row structure:

* **global swap** — move each cell toward its optimal (median) region by
  swapping with a cell there or sliding into free space,
* **local reordering** — exhaust permutations of small windows of
  consecutive cells within a segment,
* **single-row shifting** — with the order fixed, slide each cell to the
  HPWL-optimal position inside its gap (one left-to-right sweep plus one
  right-to-left sweep per pass).

All passes preserve legality exactly: cells only ever occupy intervals
their segment gaps allow.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Netlist
from .incremental import HPWLDelta
from .structure import RowStructure


def row_shift_pass(nl: Netlist, state: HPWLDelta, rows: RowStructure) -> int:
    """Slide cells to their optimal in-gap position; returns #moves."""
    moves = 0
    for _, segment, cells in rows.iter_segments():
        for sweep in (cells, list(reversed(cells))):
            for cell in sweep:
                lo, hi = rows.gap_bounds(cell, state.x)
                half = 0.5 * nl.widths[cell]
                lo, hi = lo + half, hi - half
                if hi < lo:
                    continue
                xlo, xhi, _, _ = state.optimal_region(cell)
                target = min(max(0.5 * (xlo + xhi), lo), hi)
                if abs(target - state.x[cell]) < 1e-9:
                    continue
                delta = state.move_cost_delta(
                    [cell], [target], [state.y[cell]]
                )
                if delta < -1e-12:
                    state.commit_move([cell], [target], [state.y[cell]])
                    moves += 1
    return moves


def local_reorder_pass(
    nl: Netlist, state: HPWLDelta, rows: RowStructure, window: int = 3
) -> int:
    """Try permutations of ``window`` consecutive cells; returns #moves."""
    from itertools import permutations

    moves = 0
    for _, segment, cells in rows.iter_segments():
        for start in range(len(cells) - window + 1):
            group = cells[start:start + window]
            widths = [nl.widths[c] for c in group]
            # The span available to the group.
            left = (
                state.x[cells[start - 1]] + 0.5 * nl.widths[cells[start - 1]]
                if start > 0 else segment.lo
            )
            right = (
                state.x[cells[start + window]] - 0.5 * nl.widths[cells[start + window]]
                if start + window < len(cells) else segment.hi
            )
            if right - left < sum(widths) - 1e-9:
                continue
            base_edges = [state.x[c] - 0.5 * nl.widths[c] for c in group]
            best_perm = None
            best_delta = -1e-12
            for perm in permutations(range(window)):
                if perm == tuple(range(window)):
                    continue
                # Pack the permuted cells from the leftmost original edge.
                xs = []
                cursor = base_edges[0]
                for j in perm:
                    xs.append(cursor + 0.5 * widths[j])
                    cursor += widths[j]
                if cursor > right + 1e-9:
                    continue
                moved = [group[j] for j in perm]
                delta = state.move_cost_delta(
                    moved, xs, [state.y[c] for c in moved]
                )
                if delta < best_delta:
                    best_delta = delta
                    best_perm = (perm, moved, xs)
            if best_perm is not None:
                perm, moved, xs = best_perm
                state.commit_move(moved, xs, [state.y[c] for c in moved])
                cells[start:start + window] = moved
                moves += 1
    return moves


def global_swap_pass(
    nl: Netlist, state: HPWLDelta, rows: RowStructure,
    max_candidates: int = 8,
) -> int:
    """Move cells toward their optimal regions; returns #moves.

    For each cell whose optimal region lies away from its position, try
    (a) swapping with a near-optimal-region cell of compatible width and
    (b) sliding into the free gap nearest the region, keeping whichever
    candidate improves HPWL most.
    """
    moves = 0
    std = [c for c in rows.position]
    order = sorted(std, key=lambda c: -nl.widths[c])
    for cell in order:
        xlo, xhi, ylo, yhi = state.optimal_region(cell)
        ox = min(max(state.x[cell], xlo), xhi)
        oy = min(max(state.y[cell], ylo), yhi)
        if abs(ox - state.x[cell]) + abs(oy - state.y[cell]) < 1e-9:
            continue  # already inside its optimal region
        tx = 0.5 * (xlo + xhi)
        ty = 0.5 * (ylo + yhi)
        target_row = rows.rowmap.row_index(ty)

        best = None  # (delta, kind, payload)
        # Candidate (a): swap with cells near the target in that row.
        for row in (target_row, rows.position[cell][0]):
            for seg_idx, segment in enumerate(rows.rowmap.segments[row]):
                key = (row, seg_idx)
                others = rows.cells.get(key, [])
                if not others:
                    continue
                xs = np.array([state.x[c] for c in others])
                near = np.argsort(np.abs(xs - tx))[:max_candidates]
                for j in near:
                    other = others[int(j)]
                    if other == cell:
                        continue
                    delta = _try_swap(nl, state, rows, cell, other)
                    if delta is not None and (best is None or delta < best[0]):
                        best = (delta, "swap", other)
        # Candidate (b): slide within the current gap toward the target.
        lo, hi = rows.gap_bounds(cell, state.x)
        half = 0.5 * nl.widths[cell]
        if hi - lo >= nl.widths[cell] - 1e-9:
            slide_x = min(max(tx, lo + half), hi - half)
            delta = state.move_cost_delta(
                [cell], [slide_x], [state.y[cell]]
            )
            if best is None or delta < best[0]:
                best = (delta, "slide", slide_x)

        if best is None or best[0] >= -1e-12:
            continue
        delta, kind, payload = best
        if kind == "slide":
            state.commit_move([cell], [payload], [state.y[cell]])
        else:
            _commit_swap(nl, state, rows, cell, payload)
        moves += 1
    return moves


def _swap_positions(
    nl: Netlist, state: HPWLDelta, rows: RowStructure, a: int, b: int
) -> tuple[list[float], list[float]] | None:
    """Positions after swapping a and b, or None when either misfits."""
    lo_a, hi_a = rows.gap_bounds(a, state.x)
    lo_b, hi_b = rows.gap_bounds(b, state.x)
    wa, wb = nl.widths[a], nl.widths[b]
    # b goes into a's slot and vice versa; each clamped into the gap the
    # *other* cell leaves behind (gap bounds exclude the moving pair).
    if hi_a - lo_a < wb - 1e-9 or hi_b - lo_b < wa - 1e-9:
        return None
    xb = min(max(state.x[a], lo_a + 0.5 * wb), hi_a - 0.5 * wb)
    xa = min(max(state.x[b], lo_b + 0.5 * wa), hi_b - 0.5 * wa)
    ya, yb = rows.row_y(b), rows.row_y(a)
    return [xa, xb], [ya, yb]


def _try_swap(nl, state, rows, a: int, b: int) -> float | None:
    if rows.position[a] == rows.position[b]:
        # Same segment: adjacent-order swaps handled by local reorder.
        return None
    pos = _swap_positions(nl, state, rows, a, b)
    if pos is None:
        return None
    (xa, xb), (ya, yb) = pos
    return state.move_cost_delta([a, b], [xa, xb], [ya, yb])


def _commit_swap(nl, state, rows, a: int, b: int) -> None:
    pos = _swap_positions(nl, state, rows, a, b)
    if pos is None:  # pragma: no cover - guarded by _try_swap
        return
    (xa, xb), (ya, yb) = pos
    state.commit_move([a, b], [xa, xb], [ya, yb])
    rows.swap_cells(a, b)
