"""Incremental HPWL evaluation for detailed placement moves.

Detailed placement tries thousands of candidate moves; recomputing the
full HPWL each time would dominate runtime.  :class:`HPWLDelta` keeps the
per-net bounding boxes and recomputes only the nets incident to the cells
a move touches (nets are small, so each evaluation is O(pins-on-cell)).
"""

from __future__ import annotations

import numpy as np

from ..netlist import Netlist, Placement


class HPWLDelta:
    """Mutable placement wrapper with O(local) HPWL move evaluation."""

    def __init__(self, netlist: Netlist, placement: Placement):
        self.netlist = netlist
        self.x = placement.x.copy()
        self.y = placement.y.copy()
        self._net_of_pin = netlist.pin_net_ids()
        start, order = netlist._build_cell_pins()
        self._cell_pin_start = start
        self._cell_pin_order = order
        self._bbox = self._full_bboxes()
        self._weights = netlist.net_weights
        # Per-net pin data as plain Python lists: nets are tiny, and
        # recomputing a bbox with builtin min/max over a short list is
        # an order of magnitude faster than numpy reductions on 3-element
        # arrays (this is the hot path of every move evaluation).
        self._net_pins_py: list[tuple[list[int], list[float], list[float]]] = []
        for e in range(netlist.num_nets):
            span = netlist.net_pins(e)
            self._net_pins_py.append((
                [int(c) for c in netlist.pin_cell[span]],
                [float(v) for v in netlist.pin_dx[span]],
                [float(v) for v in netlist.pin_dy[span]],
            ))

    def _full_bboxes(self) -> np.ndarray:
        nl = self.netlist
        px = self.x[nl.pin_cell] + nl.pin_dx
        py = self.y[nl.pin_cell] + nl.pin_dy
        starts = nl.net_start[:-1]
        bbox = np.empty((nl.num_nets, 4))
        bbox[:, 0] = np.minimum.reduceat(px, starts)
        bbox[:, 1] = np.maximum.reduceat(px, starts)
        bbox[:, 2] = np.minimum.reduceat(py, starts)
        bbox[:, 3] = np.maximum.reduceat(py, starts)
        return bbox

    def placement(self) -> Placement:
        return Placement(self.x.copy(), self.y.copy())

    def total_hpwl(self) -> float:
        spans = (self._bbox[:, 1] - self._bbox[:, 0]) + (self._bbox[:, 3] - self._bbox[:, 2])
        return float((spans * self._weights).sum())

    def nets_of_cells(self, cells: list[int]) -> np.ndarray:
        """Unique nets incident to the given cells."""
        pins = np.concatenate([
            self._cell_pin_order[
                self._cell_pin_start[c]:self._cell_pin_start[c + 1]
            ]
            for c in cells
        ]) if cells else np.zeros(0, dtype=np.int64)
        return np.unique(self._net_of_pin[pins])

    def _net_bbox(self, net: int) -> tuple[float, float, float, float]:
        cells, dxs, dys = self._net_pins_py[net]
        x = self.x
        y = self.y
        px = [x[c] + d for c, d in zip(cells, dxs)]
        py = [y[c] + d for c, d in zip(cells, dys)]
        return min(px), max(px), min(py), max(py)

    def nets_cost(self, nets: np.ndarray) -> float:
        """Current weighted HPWL of a set of nets."""
        b = self._bbox[nets]
        spans = (b[:, 1] - b[:, 0]) + (b[:, 3] - b[:, 2])
        return float((spans * self._weights[nets]).sum())

    def move_cost_delta(
        self,
        cells: list[int],
        new_x: list[float],
        new_y: list[float],
    ) -> float:
        """Weighted HPWL change if the cells moved to the new positions.

        Positive means the move makes things worse.  Does not mutate.
        """
        nets = self.nets_of_cells(cells)
        before = self.nets_cost(nets)
        old = [(self.x[c], self.y[c]) for c in cells]
        for c, nx, ny in zip(cells, new_x, new_y):
            self.x[c], self.y[c] = nx, ny
        after = 0.0
        for net in nets:
            xlo, xhi, ylo, yhi = self._net_bbox(int(net))
            after += self._weights[net] * ((xhi - xlo) + (yhi - ylo))
        for c, (ox, oy) in zip(cells, old):
            self.x[c], self.y[c] = ox, oy
        return after - before

    def commit_move(
        self,
        cells: list[int],
        new_x: list[float],
        new_y: list[float],
    ) -> None:
        """Apply a move and refresh the affected net bounding boxes."""
        for c, nx, ny in zip(cells, new_x, new_y):
            self.x[c], self.y[c] = nx, ny
        for net in self.nets_of_cells(cells):
            self._bbox[net] = self._net_bbox(int(net))

    def optimal_region(self, cell: int) -> tuple[float, float, float, float]:
        """The median ("optimal") region of a cell [FastPlace-DP].

        For each incident net, the bounding box of its *other* pins gives
        an interval; the optimal x (y) range is the median interval of
        the stacked interval endpoints.
        """
        nets = self.nets_of_cells([cell])
        xs: list[float] = []
        ys: list[float] = []
        x = self.x
        y = self.y
        for net in nets:
            cells, dxs, dys = self._net_pins_py[int(net)]
            px = [x[c] + d for c, d in zip(cells, dxs) if c != cell]
            if not px:
                continue
            py = [y[c] + d for c, d in zip(cells, dys) if c != cell]
            xs.extend((min(px), max(px)))
            ys.extend((min(py), max(py)))
        if not xs:
            return (self.x[cell], self.x[cell], self.y[cell], self.y[cell])
        xs.sort()
        ys.sort()
        mid = len(xs) // 2
        if len(xs) % 2 == 0:
            return (xs[mid - 1], xs[mid], ys[mid - 1], ys[mid])
        return (xs[mid], xs[mid], ys[mid], ys[mid])
