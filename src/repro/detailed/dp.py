"""Detailed placement driver (the FastPlace-DP stand-in).

The paper uses FastPlace-DP [28] to turn ComPLx's near-feasible global
placement into the legal placements Table 1/2 report.  This driver
reproduces that role:

1. legalize (Abacus by default; the input may be slightly overlapping),
2. iterate global swap -> local reordering -> single-row shifting until
   the HPWL improvement of a full round drops below a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..legalize import abacus_legalize
from ..legalize.macros import macro_obstacles
from ..legalize.rows import RowMap, snap_placement_to_sites
from ..netlist import Netlist, Placement
from ..netlist.validate import check_legal
from .incremental import HPWLDelta
from .passes import global_swap_pass, local_reorder_pass, row_shift_pass
from .structure import RowStructure


@dataclass
class DetailedPlacementReport:
    """What the driver did."""

    hpwl_before: float
    hpwl_after: float
    rounds: int
    moves: int

    @property
    def improvement(self) -> float:
        if self.hpwl_before <= 0:
            return 0.0
        return (self.hpwl_before - self.hpwl_after) / self.hpwl_before


class DetailedPlacer:
    """Configured detailed placement engine.

    ``legalizer`` maps any placement to a legal one; ``max_rounds`` and
    ``min_improvement`` bound the optimization loop.  ``reorder_window``
    is the local-reordering window size (3 is the FastPlace-DP default).
    """

    def __init__(
        self,
        netlist: Netlist,
        legalizer: Callable[[Netlist, Placement], Placement] = abacus_legalize,
        max_rounds: int = 3,
        min_improvement: float = 0.001,
        reorder_window: int = 3,
        skip_global_swap: bool = False,
        snap_sites: bool = True,
    ) -> None:
        self.netlist = netlist
        self.legalizer = legalizer
        self.max_rounds = max_rounds
        self.min_improvement = min_improvement
        self.reorder_window = reorder_window
        self.skip_global_swap = skip_global_swap
        # The optimization passes slide cells to continuous optima;
        # real flows expect site-aligned output, so a final snapping
        # pass restores alignment (legality preserved by construction).
        self.snap_sites = snap_sites
        self.last_report: DetailedPlacementReport | None = None

    def __call__(self, placement: Placement) -> Placement:
        return self.place(placement)

    def place(self, placement: Placement) -> Placement:
        """Legalize + optimize; stores a report in ``last_report``."""
        nl = self.netlist
        legal = placement
        if not check_legal(nl, placement, max_reported=1).legal:
            legal = self.legalizer(nl, placement)
        state = HPWLDelta(nl, legal)
        rows = RowStructure(nl, legal)
        before = state.total_hpwl()
        total_moves = 0
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            round_before = state.total_hpwl()
            moves = 0
            if not self.skip_global_swap:
                moves += global_swap_pass(nl, state, rows)
            moves += local_reorder_pass(nl, state, rows,
                                        window=self.reorder_window)
            moves += row_shift_pass(nl, state, rows)
            total_moves += moves
            round_after = state.total_hpwl()
            if moves == 0:
                break
            if round_before > 0 and \
                    (round_before - round_after) / round_before < self.min_improvement:
                break
        result = state.placement()
        if self.snap_sites:
            rowmap = RowMap(
                nl, extra_obstacles=macro_obstacles(nl, result),
                site_align=True,
            )
            result = snap_placement_to_sites(nl, result, rowmap)
        after = HPWLDelta(nl, result).total_hpwl()
        self.last_report = DetailedPlacementReport(
            hpwl_before=before, hpwl_after=after,
            rounds=rounds, moves=total_moves,
        )
        return result


def detailed_place(netlist: Netlist, placement: Placement,
                   **kwargs) -> Placement:
    """One-call detailed placement with default settings."""
    return DetailedPlacer(netlist, **kwargs).place(placement)
