"""Detailed placement: legalized HPWL optimization (FastPlace-DP role)."""

from .dp import DetailedPlacementReport, DetailedPlacer, detailed_place
from .incremental import HPWLDelta
from .passes import global_swap_pass, local_reorder_pass, row_shift_pass
from .structure import RowStructure

__all__ = [
    "DetailedPlacementReport",
    "DetailedPlacer",
    "HPWLDelta",
    "RowStructure",
    "detailed_place",
    "global_swap_pass",
    "local_reorder_pass",
    "row_shift_pass",
]
