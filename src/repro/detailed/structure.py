"""Row/segment bookkeeping for detailed placement.

Detailed placement operates on a *legal* placement: every standard cell
sits in a row segment, ordered by x.  :class:`RowStructure` tracks that
order so passes can query the free gap around a cell and keep legality
while moving cells.
"""

from __future__ import annotations

import numpy as np

from ..legalize.macros import macro_obstacles
from ..legalize.rows import RowMap
from ..netlist import Netlist, Placement


class RowStructure:
    """Ordered cells per (row, segment) of a legal placement."""

    def __init__(self, netlist: Netlist, placement: Placement):
        self.netlist = netlist
        self.rowmap = RowMap(
            netlist, extra_obstacles=macro_obstacles(netlist, placement)
        )
        n_rows = self.rowmap.num_rows
        #: cells[(row, seg)] -> list of cell indices ordered by x
        self.cells: dict[tuple[int, int], list[int]] = {}
        #: position[cell] -> (row, seg)
        self.position: dict[int, tuple[int, int]] = {}

        std = np.flatnonzero(netlist.movable & ~netlist.is_macro)
        order = std[np.argsort(placement.x[std], kind="stable")]
        for cell in order:
            row = self.rowmap.row_index(placement.y[cell])
            seg = self._segment_of(row, placement.x[cell])
            if seg is None:
                # A cell outside every free segment (slightly illegal
                # input); drop it into the nearest segment.
                seg = self._nearest_segment(row, placement.x[cell])
            key = (row, seg)
            self.cells.setdefault(key, []).append(int(cell))
            self.position[int(cell)] = key

    def _segment_of(self, row: int, x: float) -> int | None:
        for s, seg in enumerate(self.rowmap.segments[row]):
            if seg.lo - 1e-6 <= x <= seg.hi + 1e-6:
                return s
        return None

    def _nearest_segment(self, row: int, x: float) -> int:
        segs = self.rowmap.segments[row]
        if not segs:
            raise ValueError(f"row {row} has no free segments")
        dists = [max(seg.lo - x, x - seg.hi, 0.0) for seg in segs]
        return int(np.argmin(dists))

    def index_in_segment(self, cell: int) -> int:
        key = self.position[cell]
        return self.cells[key].index(cell)

    def gap_bounds(
        self, cell: int, x: np.ndarray
    ) -> tuple[float, float]:
        """Free interval available to ``cell``'s *left/right edges* given
        its neighbors' current positions."""
        nl = self.netlist
        row, seg = self.position[cell]
        segment = self.rowmap.segments[row][seg]
        order = self.cells[(row, seg)]
        i = order.index(cell)
        lo = segment.lo
        if i > 0:
            left = order[i - 1]
            lo = x[left] + 0.5 * nl.widths[left]
        hi = segment.hi
        if i + 1 < len(order):
            right = order[i + 1]
            hi = x[right] - 0.5 * nl.widths[right]
        return lo, hi

    def swap_cells(self, a: int, b: int) -> None:
        """Exchange two cells' slots across segments.

        Same-segment swaps are order changes, not slot swaps; they are
        the job of local reordering and rejected here.
        """
        key_a, key_b = self.position[a], self.position[b]
        if key_a == key_b:
            raise ValueError("same-segment swaps must go through reordering")
        ia = self.cells[key_a].index(a)
        ib = self.cells[key_b].index(b)
        self.cells[key_a][ia] = b
        self.cells[key_b][ib] = a
        self.position[a], self.position[b] = key_b, key_a

    def row_y(self, cell: int) -> float:
        return self.rowmap.row_center_y(self.position[cell][0])

    def iter_segments(self):
        """Yields ((row, seg), segment, ordered cell list)."""
        for (row, seg), cells in self.cells.items():
            yield (row, seg), self.rowmap.segments[row][seg], cells
