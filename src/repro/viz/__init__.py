"""Plot output: ASCII charts for terminals, SVG files for figures."""

from .ascii import ascii_chart, ascii_scatter
from .svg import (
    bar_chart_svg_str,
    heatmap_svg_str,
    histogram_svg_str,
    line_chart_svg,
    line_chart_svg_str,
    placement_svg,
    placement_svg_str,
    scatter_svg,
    scatter_svg_str,
)

__all__ = [
    "ascii_chart",
    "ascii_scatter",
    "bar_chart_svg_str",
    "heatmap_svg_str",
    "histogram_svg_str",
    "line_chart_svg",
    "line_chart_svg_str",
    "placement_svg",
    "placement_svg_str",
    "scatter_svg",
    "scatter_svg_str",
]
