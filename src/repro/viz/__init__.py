"""Plot output: ASCII charts for terminals, SVG files for figures."""

from .ascii import ascii_chart, ascii_scatter
from .svg import line_chart_svg, placement_svg, scatter_svg

__all__ = [
    "ascii_chart",
    "ascii_scatter",
    "line_chart_svg",
    "placement_svg",
    "scatter_svg",
]
