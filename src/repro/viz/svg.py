"""Minimal SVG output: line charts and placement plots.

Hand-rolled (no matplotlib in the environment); enough to regenerate the
paper's figures as vector files: convergence curves (Figure 1),
shredded-macro placements (Figure 2), scalability scatter (Figure 3),
region-constraint before/after (Figure 4) and path overlays (Figure 5).
"""

from __future__ import annotations

import io

import numpy as np

from ..netlist import Netlist, Placement

_PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"]


def _svg_header(width: int, height: int) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
        f'<rect width="{width}" height="{height}" fill="white"/>\n'
    )


def line_chart_svg(
    series: dict[str, np.ndarray],
    path: str,
    title: str = "",
    width: int = 640,
    height: int = 400,
    logy: bool = False,
    x_values: np.ndarray | None = None,
) -> None:
    """Write a multi-series line chart to an SVG file."""
    margin = 50
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}

    def ty(a: np.ndarray) -> np.ndarray:
        return np.log10(np.maximum(a, 1e-300)) if logy else a

    all_y = np.concatenate([ty(a) for a in arrays.values() if a.size])
    ylo, yhi = float(all_y.min()), float(all_y.max())
    if yhi <= ylo:
        yhi = ylo + 1.0
    n = max(a.shape[0] for a in arrays.values())
    xs = np.asarray(x_values, dtype=np.float64) if x_values is not None \
        else np.arange(n, dtype=np.float64)
    xlo, xhi = float(xs.min()), float(xs.max())
    if xhi <= xlo:
        xhi = xlo + 1.0

    out = io.StringIO()
    out.write(_svg_header(width, height))
    if title:
        out.write(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14">{title}</text>\n'
        )
    out.write(
        f'<rect x="{margin}" y="{margin}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>\n'
    )
    for (name, a), color in zip(arrays.items(), _PALETTE):
        t = ty(a)
        pts = []
        for i, v in enumerate(t):
            px = margin + (xs[min(i, xs.shape[0] - 1)] - xlo) / (xhi - xlo) * plot_w
            py = margin + plot_h - (v - ylo) / (yhi - ylo) * plot_h
            pts.append(f"{px:.1f},{py:.1f}")
        out.write(
            f'<polyline points="{" ".join(pts)}" fill="none" '
            f'stroke="{color}" stroke-width="1.5"/>\n'
        )
    # Legend and axis extremes.
    for i, (name, color) in enumerate(zip(arrays, _PALETTE)):
        y = margin + 16 + 16 * i
        out.write(
            f'<line x1="{width - margin - 110}" y1="{y - 4}" '
            f'x2="{width - margin - 90}" y2="{y - 4}" stroke="{color}" '
            'stroke-width="2"/>\n'
            f'<text x="{width - margin - 84}" y="{y}" font-family="sans-serif" '
            f'font-size="12">{name}</text>\n'
        )
    lo_label = f"{10**ylo:.3g}" if logy else f"{ylo:.3g}"
    hi_label = f"{10**yhi:.3g}" if logy else f"{yhi:.3g}"
    out.write(
        f'<text x="{margin - 4}" y="{margin + 4}" text-anchor="end" '
        f'font-family="sans-serif" font-size="11">{hi_label}</text>\n'
        f'<text x="{margin - 4}" y="{margin + plot_h}" text-anchor="end" '
        f'font-family="sans-serif" font-size="11">{lo_label}</text>\n'
    )
    out.write("</svg>\n")
    with open(path, "w") as handle:
        handle.write(out.getvalue())


def placement_svg(
    netlist: Netlist,
    placement: Placement,
    path: str,
    title: str = "",
    width: int = 640,
    highlight: np.ndarray | None = None,
    extra_rects: list[tuple[float, float, float, float, str]] | None = None,
) -> None:
    """Write a placement plot: std cells as dots, macros as outlines.

    ``highlight`` marks a subset of cells in red; ``extra_rects`` draws
    extra rectangles (e.g. region constraints) as
    ``(xlo, ylo, xhi, yhi, color)``.
    """
    bounds = netlist.core.bounds
    scale = (width - 20) / max(bounds.width, 1e-9)
    height = int(bounds.height * scale) + 40

    def sx(x: float) -> float:
        return 10 + (x - bounds.xlo) * scale

    def sy(y: float) -> float:
        return height - 20 - (y - bounds.ylo) * scale

    out = io.StringIO()
    out.write(_svg_header(width, height))
    if title:
        out.write(
            f'<text x="{width / 2}" y="14" text-anchor="middle" '
            f'font-family="sans-serif" font-size="12">{title}</text>\n'
        )
    out.write(
        f'<rect x="{sx(bounds.xlo)}" y="{sy(bounds.yhi)}" '
        f'width="{bounds.width * scale}" height="{bounds.height * scale}" '
        'fill="none" stroke="#444"/>\n'
    )
    hi = set(int(i) for i in (highlight if highlight is not None else []))
    for i in range(netlist.num_cells):
        x, y = placement.x[i], placement.y[i]
        if netlist.is_macro[i] or (not netlist.movable[i] and netlist.areas[i] > 0):
            color = "#d62728" if netlist.movable[i] else "#999999"
            out.write(
                f'<rect x="{sx(x - 0.5 * netlist.widths[i]):.1f}" '
                f'y="{sy(y + 0.5 * netlist.heights[i]):.1f}" '
                f'width="{netlist.widths[i] * scale:.1f}" '
                f'height="{netlist.heights[i] * scale:.1f}" '
                f'fill="none" stroke="{color}"/>\n'
            )
        elif netlist.movable[i]:
            color = "#d62728" if i in hi else "#1f77b4"
            r = 2.0 if i in hi else 1.0
            out.write(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="{r}" '
                f'fill="{color}"/>\n'
            )
    for (xlo, ylo, xhi_, yhi_, color) in extra_rects or []:
        out.write(
            f'<rect x="{sx(xlo):.1f}" y="{sy(yhi_):.1f}" '
            f'width="{(xhi_ - xlo) * scale:.1f}" '
            f'height="{(yhi_ - ylo) * scale:.1f}" '
            f'fill="none" stroke="{color}" stroke-width="2" '
            'stroke-dasharray="6,3"/>\n'
        )
    out.write("</svg>\n")
    with open(path, "w") as handle:
        handle.write(out.getvalue())


def scatter_svg(
    x: np.ndarray,
    y_series: dict[str, np.ndarray],
    path: str,
    title: str = "",
    width: int = 640,
    height: int = 400,
    logx: bool = False,
) -> None:
    """Scatter chart with shared x values (Figure 3 style)."""
    margin = 50
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin
    xs = np.asarray(x, dtype=np.float64)
    if logx:
        xs = np.log10(np.maximum(xs, 1e-300))
    xlo, xhi = float(xs.min()), float(xs.max())
    if xhi <= xlo:
        xhi = xlo + 1.0

    out = io.StringIO()
    out.write(_svg_header(width, height))
    if title:
        out.write(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14">{title}</text>\n'
        )
    out.write(
        f'<rect x="{margin}" y="{margin}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>\n'
    )
    for (name, ys), color in zip(y_series.items(), _PALETTE):
        ys = np.asarray(ys, dtype=np.float64)
        ylo, yhi = float(ys.min()), float(ys.max())
        if yhi <= ylo:
            yhi = ylo + 1.0
        for xv, yv in zip(xs, ys):
            px = margin + (xv - xlo) / (xhi - xlo) * plot_w
            py = margin + plot_h - (yv - ylo) / (yhi - ylo) * plot_h
            out.write(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4" fill="{color}" '
                'fill-opacity="0.7"/>\n'
            )
    for i, (name, color) in enumerate(zip(y_series, _PALETTE)):
        y = margin + 16 + 16 * i
        out.write(
            f'<circle cx="{width - margin - 100}" cy="{y - 4}" r="4" '
            f'fill="{color}"/>\n'
            f'<text x="{width - margin - 90}" y="{y}" font-family="sans-serif" '
            f'font-size="12">{name}</text>\n'
        )
    out.write("</svg>\n")
    with open(path, "w") as handle:
        handle.write(out.getvalue())
