"""Minimal SVG output: line charts and placement plots.

Hand-rolled (no matplotlib in the environment); enough to regenerate the
paper's figures as vector files: convergence curves (Figure 1),
shredded-macro placements (Figure 2), scalability scatter (Figure 3),
region-constraint before/after (Figure 4) and path overlays (Figure 5).

Every chart comes in two flavors: a ``*_svg_str`` renderer returning the
SVG document as a string (what the run report embeds inline) and a
``*_svg`` wrapper writing it to a file.  The bar/heatmap/histogram
renderers exist for the report: stage-time bars, the density-utilization
heatmap and the legalizer displacement histogram.
"""

from __future__ import annotations

import io

import numpy as np

from ..netlist import Netlist, Placement

_PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"]

_FONT = 'font-family="sans-serif"'


def _svg_header(width: int, height: int) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
        f'<rect width="{width}" height="{height}" fill="white"/>\n'
    )


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def line_chart_svg_str(
    series: dict[str, np.ndarray],
    title: str = "",
    width: int = 640,
    height: int = 400,
    logy: bool = False,
    x_values: np.ndarray | None = None,
) -> str:
    """Render a multi-series line chart as an SVG document string."""
    margin = 50
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}

    def ty(a: np.ndarray) -> np.ndarray:
        return np.log10(np.maximum(a, 1e-300)) if logy else a

    all_y = np.concatenate([ty(a) for a in arrays.values() if a.size])
    ylo, yhi = float(all_y.min()), float(all_y.max())
    if yhi <= ylo:
        yhi = ylo + 1.0
    n = max(a.shape[0] for a in arrays.values())
    xs = np.asarray(x_values, dtype=np.float64) if x_values is not None \
        else np.arange(n, dtype=np.float64)
    xlo, xhi = float(xs.min()), float(xs.max())
    if xhi <= xlo:
        xhi = xlo + 1.0

    out = io.StringIO()
    out.write(_svg_header(width, height))
    if title:
        out.write(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'{_FONT} font-size="14">{_escape(title)}</text>\n'
        )
    out.write(
        f'<rect x="{margin}" y="{margin}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>\n'
    )
    for (name, a), color in zip(arrays.items(), _PALETTE):
        t = ty(a)
        pts = []
        for i, v in enumerate(t):
            px = margin + (xs[min(i, xs.shape[0] - 1)] - xlo) / (xhi - xlo) * plot_w
            py = margin + plot_h - (v - ylo) / (yhi - ylo) * plot_h
            pts.append(f"{px:.1f},{py:.1f}")
        out.write(
            f'<polyline points="{" ".join(pts)}" fill="none" '
            f'stroke="{color}" stroke-width="1.5"/>\n'
        )
    # Legend and axis extremes.
    for i, (name, color) in enumerate(zip(arrays, _PALETTE)):
        y = margin + 16 + 16 * i
        out.write(
            f'<line x1="{width - margin - 110}" y1="{y - 4}" '
            f'x2="{width - margin - 90}" y2="{y - 4}" stroke="{color}" '
            'stroke-width="2"/>\n'
            f'<text x="{width - margin - 84}" y="{y}" {_FONT} '
            f'font-size="12">{_escape(name)}</text>\n'
        )
    lo_label = f"{10**ylo:.3g}" if logy else f"{ylo:.3g}"
    hi_label = f"{10**yhi:.3g}" if logy else f"{yhi:.3g}"
    out.write(
        f'<text x="{margin - 4}" y="{margin + 4}" text-anchor="end" '
        f'{_FONT} font-size="11">{hi_label}</text>\n'
        f'<text x="{margin - 4}" y="{margin + plot_h}" text-anchor="end" '
        f'{_FONT} font-size="11">{lo_label}</text>\n'
    )
    out.write("</svg>\n")
    return out.getvalue()


def line_chart_svg(
    series: dict[str, np.ndarray],
    path: str,
    title: str = "",
    width: int = 640,
    height: int = 400,
    logy: bool = False,
    x_values: np.ndarray | None = None,
) -> None:
    """Write a multi-series line chart to an SVG file."""
    document = line_chart_svg_str(series, title=title, width=width,
                                  height=height, logy=logy,
                                  x_values=x_values)
    with open(path, "w") as handle:
        handle.write(document)


def placement_svg_str(
    netlist: Netlist,
    placement: Placement,
    title: str = "",
    width: int = 640,
    highlight: np.ndarray | None = None,
    extra_rects: list[tuple[float, float, float, float, str]] | None = None,
) -> str:
    """Render a placement plot: std cells as dots, macros as outlines.

    ``highlight`` marks a subset of cells in red; ``extra_rects`` draws
    extra rectangles (e.g. region constraints) as
    ``(xlo, ylo, xhi, yhi, color)``.
    """
    bounds = netlist.core.bounds
    scale = (width - 20) / max(bounds.width, 1e-9)
    height = int(bounds.height * scale) + 40

    def sx(x: float) -> float:
        return 10 + (x - bounds.xlo) * scale

    def sy(y: float) -> float:
        return height - 20 - (y - bounds.ylo) * scale

    out = io.StringIO()
    out.write(_svg_header(width, height))
    if title:
        out.write(
            f'<text x="{width / 2}" y="14" text-anchor="middle" '
            f'{_FONT} font-size="12">{_escape(title)}</text>\n'
        )
    out.write(
        f'<rect x="{sx(bounds.xlo)}" y="{sy(bounds.yhi)}" '
        f'width="{bounds.width * scale}" height="{bounds.height * scale}" '
        'fill="none" stroke="#444"/>\n'
    )
    hi = set(int(i) for i in (highlight if highlight is not None else []))
    for i in range(netlist.num_cells):
        x, y = placement.x[i], placement.y[i]
        if netlist.is_macro[i] or (not netlist.movable[i] and netlist.areas[i] > 0):
            color = "#d62728" if netlist.movable[i] else "#999999"
            out.write(
                f'<rect x="{sx(x - 0.5 * netlist.widths[i]):.1f}" '
                f'y="{sy(y + 0.5 * netlist.heights[i]):.1f}" '
                f'width="{netlist.widths[i] * scale:.1f}" '
                f'height="{netlist.heights[i] * scale:.1f}" '
                f'fill="none" stroke="{color}"/>\n'
            )
        elif netlist.movable[i]:
            color = "#d62728" if i in hi else "#1f77b4"
            r = 2.0 if i in hi else 1.0
            out.write(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="{r}" '
                f'fill="{color}"/>\n'
            )
    for (xlo, ylo, xhi_, yhi_, color) in extra_rects or []:
        out.write(
            f'<rect x="{sx(xlo):.1f}" y="{sy(yhi_):.1f}" '
            f'width="{(xhi_ - xlo) * scale:.1f}" '
            f'height="{(yhi_ - ylo) * scale:.1f}" '
            f'fill="none" stroke="{color}" stroke-width="2" '
            'stroke-dasharray="6,3"/>\n'
        )
    out.write("</svg>\n")
    return out.getvalue()


def placement_svg(
    netlist: Netlist,
    placement: Placement,
    path: str,
    title: str = "",
    width: int = 640,
    highlight: np.ndarray | None = None,
    extra_rects: list[tuple[float, float, float, float, str]] | None = None,
) -> None:
    """Write a placement plot to an SVG file (see placement_svg_str)."""
    document = placement_svg_str(netlist, placement, title=title,
                                 width=width, highlight=highlight,
                                 extra_rects=extra_rects)
    with open(path, "w") as handle:
        handle.write(document)


def scatter_svg_str(
    x: np.ndarray,
    y_series: dict[str, np.ndarray],
    title: str = "",
    width: int = 640,
    height: int = 400,
    logx: bool = False,
) -> str:
    """Render a scatter chart with shared x values (Figure 3 style)."""
    margin = 50
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin
    xs = np.asarray(x, dtype=np.float64)
    if logx:
        xs = np.log10(np.maximum(xs, 1e-300))
    xlo, xhi = float(xs.min()), float(xs.max())
    if xhi <= xlo:
        xhi = xlo + 1.0

    out = io.StringIO()
    out.write(_svg_header(width, height))
    if title:
        out.write(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'{_FONT} font-size="14">{_escape(title)}</text>\n'
        )
    out.write(
        f'<rect x="{margin}" y="{margin}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>\n'
    )
    for (name, ys), color in zip(y_series.items(), _PALETTE):
        ys = np.asarray(ys, dtype=np.float64)
        ylo, yhi = float(ys.min()), float(ys.max())
        if yhi <= ylo:
            yhi = ylo + 1.0
        for xv, yv in zip(xs, ys):
            px = margin + (xv - xlo) / (xhi - xlo) * plot_w
            py = margin + plot_h - (yv - ylo) / (yhi - ylo) * plot_h
            out.write(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4" fill="{color}" '
                'fill-opacity="0.7"/>\n'
            )
    for i, (name, color) in enumerate(zip(y_series, _PALETTE)):
        y = margin + 16 + 16 * i
        out.write(
            f'<circle cx="{width - margin - 100}" cy="{y - 4}" r="4" '
            f'fill="{color}"/>\n'
            f'<text x="{width - margin - 90}" y="{y}" {_FONT} '
            f'font-size="12">{_escape(name)}</text>\n'
        )
    out.write("</svg>\n")
    return out.getvalue()


def scatter_svg(
    x: np.ndarray,
    y_series: dict[str, np.ndarray],
    path: str,
    title: str = "",
    width: int = 640,
    height: int = 400,
    logx: bool = False,
) -> None:
    """Write a scatter chart to an SVG file (see scatter_svg_str)."""
    document = scatter_svg_str(x, y_series, title=title, width=width,
                               height=height, logx=logx)
    with open(path, "w") as handle:
        handle.write(document)


def bar_chart_svg_str(
    labels: list[str],
    values: np.ndarray,
    title: str = "",
    width: int = 640,
    unit: str = "",
    color: str = "#1f77b4",
) -> str:
    """Horizontal bar chart — one bar per label (stage-time bars)."""
    vals = np.asarray(values, dtype=np.float64)
    bar_h, gap, top = 22, 8, 36 if title else 12
    label_w = 150
    height = top + len(labels) * (bar_h + gap) + 12
    vmax = float(vals.max()) if vals.size and vals.max() > 0 else 1.0
    plot_w = width - label_w - 90

    out = io.StringIO()
    out.write(_svg_header(width, height))
    if title:
        out.write(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'{_FONT} font-size="14">{_escape(title)}</text>\n'
        )
    for i, (label, value) in enumerate(zip(labels, vals)):
        y = top + i * (bar_h + gap)
        w = max(value / vmax * plot_w, 0.0)
        out.write(
            f'<text x="{label_w - 6}" y="{y + bar_h - 6}" text-anchor="end" '
            f'{_FONT} font-size="12">{_escape(label)}</text>\n'
            f'<rect x="{label_w}" y="{y}" width="{w:.1f}" height="{bar_h}" '
            f'fill="{color}"/>\n'
            f'<text x="{label_w + w + 6:.1f}" y="{y + bar_h - 6}" '
            f'{_FONT} font-size="11">{value:.3g}{_escape(unit)}</text>\n'
        )
    out.write("</svg>\n")
    return out.getvalue()


def heatmap_svg_str(
    matrix: np.ndarray,
    title: str = "",
    width: int = 420,
    vmax: float | None = None,
) -> str:
    """Density heatmap: white (empty) through red (``vmax``, default the
    matrix maximum).  Row 0 is drawn at the bottom, matching the
    DensityGrid's y-up bin indexing."""
    grid = np.asarray(matrix, dtype=np.float64)
    ny, nx = grid.shape
    top = 28 if title else 4
    cell = max(2, (width - 8) // max(nx, 1))
    plot_w, plot_h = cell * nx, cell * ny
    height = top + plot_h + 8
    top_v = float(vmax) if vmax is not None else float(grid.max())
    if top_v <= 0:
        top_v = 1.0
    level = np.clip(grid / top_v, 0.0, 1.0)

    out = io.StringIO()
    out.write(_svg_header(width, height))
    if title:
        out.write(
            f'<text x="{width / 2}" y="18" text-anchor="middle" '
            f'{_FONT} font-size="13">{_escape(title)}</text>\n'
        )
    for iy in range(ny):
        for ix in range(nx):
            t = level[iy, ix]
            if t <= 0:
                continue
            # white -> red ramp
            gb = int(round(255 * (1.0 - t)))
            out.write(
                f'<rect x="{4 + ix * cell}" '
                f'y="{top + (ny - 1 - iy) * cell}" width="{cell}" '
                f'height="{cell}" fill="rgb(255,{gb},{gb})"/>\n'
            )
    out.write(
        f'<rect x="4" y="{top}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>\n'
    )
    out.write("</svg>\n")
    return out.getvalue()


def histogram_svg_str(
    counts: np.ndarray,
    lo: float,
    hi: float,
    title: str = "",
    width: int = 640,
    height: int = 260,
    unit: str = "",
    color: str = "#2ca02c",
) -> str:
    """Vertical histogram from precomputed bin counts over [lo, hi]."""
    vals = np.asarray(counts, dtype=np.float64)
    margin = 40
    top = 36 if title else 12
    plot_w = width - 2 * margin
    plot_h = height - top - 30
    vmax = float(vals.max()) if vals.size and vals.max() > 0 else 1.0
    n = max(vals.shape[0], 1)
    bar_w = plot_w / n

    out = io.StringIO()
    out.write(_svg_header(width, height))
    if title:
        out.write(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'{_FONT} font-size="14">{_escape(title)}</text>\n'
        )
    for i, value in enumerate(vals):
        h = value / vmax * plot_h
        out.write(
            f'<rect x="{margin + i * bar_w:.1f}" '
            f'y="{top + plot_h - h:.1f}" width="{max(bar_w - 2, 1):.1f}" '
            f'height="{h:.1f}" fill="{color}"/>\n'
        )
    out.write(
        f'<line x1="{margin}" y1="{top + plot_h}" '
        f'x2="{margin + plot_w}" y2="{top + plot_h}" stroke="#444"/>\n'
        f'<text x="{margin}" y="{top + plot_h + 16}" {_FONT} '
        f'font-size="11">{lo:.3g}{_escape(unit)}</text>\n'
        f'<text x="{margin + plot_w}" y="{top + plot_h + 16}" '
        f'text-anchor="end" {_FONT} font-size="11">'
        f'{hi:.3g}{_escape(unit)}</text>\n'
        f'<text x="{margin - 4}" y="{top + 8}" text-anchor="end" '
        f'{_FONT} font-size="11">{vmax:.0f}</text>\n'
    )
    out.write("</svg>\n")
    return out.getvalue()
