"""ASCII line charts for terminal-friendly figure reproduction.

matplotlib is unavailable in the reproduction environment, so the
figure experiments print their series as ASCII charts (and write SVG
files via :mod:`repro.viz.svg` for anything richer).
"""

from __future__ import annotations

import numpy as np


def ascii_chart(
    series: dict[str, np.ndarray],
    width: int = 72,
    height: int = 16,
    title: str = "",
    logy: bool = False,
) -> str:
    """Plot one or more equal-length series as an ASCII chart.

    Each series gets a distinct marker; the y-axis is shared (optionally
    log-scaled), the x-axis is the sample index.
    """
    markers = "*o+x#@%&"
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    if not arrays:
        return "(no data)\n"
    n = max(a.shape[0] for a in arrays.values())
    if n == 0:
        return "(no data)\n"

    def transform(a: np.ndarray) -> np.ndarray:
        return np.log10(np.maximum(a, 1e-300)) if logy else a

    lo = min(float(transform(a).min()) for a in arrays.values() if a.size)
    hi = max(float(transform(a).max()) for a in arrays.values() if a.size)
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, a), marker in zip(arrays.items(), markers):
        t = transform(a)
        for i, v in enumerate(t):
            col = int(i / max(n - 1, 1) * (width - 1))
            row = int((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi = f"{10**hi:.3g}" if logy else f"{hi:.3g}"
    y_lo = f"{10**lo:.3g}" if logy else f"{lo:.3g}"
    label_width = max(len(y_hi), len(y_lo)) + 1
    for r, row_chars in enumerate(grid):
        label = y_hi if r == 0 else (y_lo if r == height - 1 else "")
        lines.append(label.rjust(label_width) + "|" + "".join(row_chars))
    lines.append(" " * label_width + "+" + "-" * width)
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(arrays.items(), markers)
    )
    lines.append(" " * (label_width + 1) + legend)
    return "\n".join(lines) + "\n"


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 72,
    height: int = 20,
    title: str = "",
    marker: str = "*",
) -> str:
    """Scatter plot of points (e.g. a placement's cell positions)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0:
        return "(no points)\n"
    xlo, xhi = float(x.min()), float(x.max())
    ylo, yhi = float(y.min()), float(y.max())
    xhi = xhi if xhi > xlo else xlo + 1.0
    yhi = yhi if yhi > ylo else ylo + 1.0
    grid = [[" "] * width for _ in range(height)]
    cols = ((x - xlo) / (xhi - xlo) * (width - 1)).astype(int)
    rows = ((y - ylo) / (yhi - ylo) * (height - 1)).astype(int)
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = marker
    lines = ([title] if title else []) + [
        "|" + "".join(row) for row in grid
    ] + ["+" + "-" * width]
    return "\n".join(lines) + "\n"
