"""Command-line placer: Bookshelf in, placed Bookshelf out.

The front door for users with real designs::

    python -m repro place design.aux --out placed/ --gamma 0.9
    python -m repro place design.aux --placer simpl --svg layout.svg
    python -m repro generate adaptec1_s --scale 0.2 --out bench/
    python -m repro analyze design.aux

``place`` runs the full paper flow (ComPLx global placement →
legalization → detailed placement) and writes the placed design as a
new Bookshelf file set plus an optional SVG and quality report.
``generate`` materializes a synthetic suite as Bookshelf files.
``analyze`` prints the quality report for a design's ``.pl`` placement.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import hashlib
import json
import logging
import os
import sys
import time

from . import telemetry
from .analysis import analyze_placement
from .core.config import ResilienceConfig
from .core.effort import effort_preset
from .detailed import DetailedPlacer
from .diagnostics import diagnose
from .experiments.common import make_placer
from .legalize import abacus_legalize, tetris_legalize
from .models import hpwl
from .netlist.bookshelf import BookshelfError, read_aux, write_aux
from .projection.grid import DensityGrid, default_grid_shape
from .report import build_report, record_stage_totals, render_html, \
    write_report
from .resilience import CheckpointError, legalize_with_fallback
from .runs import RunRegistry
from .viz import placement_svg
from .workloads import load_suite, suite_names

LEGALIZERS = {"tetris": tetris_legalize, "abacus": abacus_legalize}


def _add_place_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("aux", help="input .aux file")
    parser.add_argument("--out", default="placed",
                        help="output directory for the placed file set")
    parser.add_argument("--placer", default="complx",
                        help="placer: complx, complx_finest, complx_lse, "
                             "simpl, rql, fastplace, nonlinear, gordian")
    parser.add_argument("--gamma", type=float, default=1.0,
                        help="target density in (0, 1]")
    parser.add_argument("--effort", type=int, default=None,
                        metavar="1..9",
                        help="Coloquinte-style effort preset: one knob "
                             "filling in iteration/CG budgets, the "
                             "gap_tolerance finish line, and the "
                             "legalizer/DP defaults; explicit flags win")
    parser.add_argument("--legalizer", choices=sorted(LEGALIZERS),
                        default=None,
                        help="legalizer (default: abacus, or the "
                             "--effort preset's choice)")
    parser.add_argument("--skip-detailed", action="store_true",
                        help="stop after legalization (implied by "
                             "--effort levels whose preset skips DP)")
    parser.add_argument("--svg", default=None,
                        help="also write a placement plot to this path")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--threads", type=int, default=1,
                        help="CG solver threads: 2 overlaps the x/y axis "
                             "solves; 1 (default) is bit-exact sequential")
    parser.add_argument("--check-invariants", action="store_true",
                        help="verify stage-boundary invariants while "
                             "placing and certify the legalized result "
                             "(slower; under the supervisor violations "
                             "become recoverable logged events)")
    parser.add_argument("--max-retries", type=int, default=3,
                        help="rollback/retry budget per faulted iteration")
    parser.add_argument("--deadline-seconds", type=float, default=None,
                        help="wall-clock budget for global placement; on "
                             "expiry the best-so-far placement is kept")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        help="write a resumable checkpoint every N "
                             "iterations (0 disables)")
    parser.add_argument("--checkpoint-path", default=None,
                        help="checkpoint file (default: "
                             "<out>/<design>.ckpt.npz)")
    parser.add_argument("--resume", default=None, metavar="CKPT",
                        help="resume global placement from a checkpoint "
                             "written by --checkpoint-every")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record tracing spans for the whole flow; "
                             ".jsonl writes one span per line, any other "
                             "extension writes Chrome trace format "
                             "(open in chrome://tracing or Perfetto)")
    parser.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="write the run's telemetry metrics "
                             "(per-iteration series, counters, gauges) "
                             "as JSON")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write a self-contained run report "
                             "(convergence charts, doctor findings, "
                             "stage times); .md renders Markdown, "
                             "anything else single-file HTML")
    parser.add_argument("--run-dir", default=None, metavar="DIR",
                        help="archive the run (metrics, manifest, report, "
                             "trace) under DIR/<design>-NNNN/ for later "
                             "'python -m repro.runs diff'")


def _legalizer_chain(preferred: str) -> list[tuple[str, object]]:
    """Preferred legalizer first, tetris as the degraded fallback."""
    chain = [(preferred, LEGALIZERS[preferred])]
    if preferred != "tetris":
        chain.append(("tetris", tetris_legalize))
    return chain


def cmd_place(args: argparse.Namespace) -> int:
    """Place a Bookshelf design end to end (with optional telemetry)."""
    with contextlib.ExitStack() as stack:
        tracer = registry = None
        if args.trace or args.report or args.run_dir:
            tracer = stack.enter_context(telemetry.tracing())
        if args.metrics_json or args.report or args.run_dir:
            registry = stack.enter_context(telemetry.metrics())
        code = _place_flow(args)
    if registry is not None and args.metrics_json:
        registry.write_json(args.metrics_json)
        print(f"wrote {args.metrics_json}")
    if tracer is not None and args.trace:
        if args.trace.endswith(".jsonl"):
            tracer.write_jsonl(args.trace)
        else:
            tracer.write_chrome_trace(args.trace)
        print(f"wrote {args.trace}")
    return code


def _place_flow(args: argparse.Namespace) -> int:
    netlist, initial = read_aux(args.aux)
    print(f"loaded {netlist}")
    try:
        preset = (
            effort_preset(args.effort) if args.effort is not None else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    legalizer = args.legalizer or (
        preset.legalizer if preset is not None else "abacus"
    )
    skip_detailed = args.skip_detailed or (
        preset is not None and not preset.detailed
    )
    checkpoint_path = args.checkpoint_path
    if args.checkpoint_every > 0 and checkpoint_path is None:
        checkpoint_path = os.path.join(args.out, f"{netlist.name}.ckpt.npz")
        os.makedirs(args.out, exist_ok=True)
    resilience = ResilienceConfig(
        max_retries=args.max_retries,
        deadline_seconds=args.deadline_seconds,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=checkpoint_path,
    )
    placer = make_placer(args.placer, netlist, gamma=args.gamma,
                         seed=args.seed,
                         check_invariants=args.check_invariants,
                         resilience=resilience,
                         solver_threads=args.threads,
                         effort=args.effort)
    if args.resume is not None and not hasattr(placer, "_run_iteration"):
        print(f"error: placer {args.placer!r} does not support --resume",
              file=sys.stderr)
        return 2

    t0 = time.perf_counter()
    if args.resume is not None:
        result = placer.place(resume_from=args.resume)
    else:
        result = placer.place()
    gp_seconds = time.perf_counter() - t0
    print(f"global placement: {result.history.summary()} "
          f"[{gp_seconds:.1f}s]")
    registry = telemetry.get_metrics()
    if registry is not None:
        # Adopt the run's per-iteration series next to the cross-stage
        # counters/gauges the solvers and legalizers recorded.
        registry.merge(result.metrics)
        registry.meta["netlist"] = netlist.name
        registry.meta["placer"] = args.placer
    resilience_report = getattr(result, "extras", {}).get("resilience")
    recovery_events = resilience_report["events"] if resilience_report else []
    if recovery_events:
        print(f"recovery: {resilience_report['summary']}")

    chain = _legalizer_chain(legalizer)
    t1 = time.perf_counter()
    if skip_detailed:
        final, used = legalize_with_fallback(
            netlist, result.upper, chain,
            check_invariants=args.check_invariants,
        )
        if used != legalizer:
            print(f"legalizer degraded: {legalizer} -> {used}")
    else:
        def chained_legalizer(nl, placement, check_invariants=False):
            legal, _ = legalize_with_fallback(
                nl, placement, chain, check_invariants=check_invariants,
            )
            return legal

        dp = DetailedPlacer(netlist, legalizer=chained_legalizer)
        final = dp.place(result.upper)
    print(f"legalization+DP: HPWL {hpwl(netlist, final):.1f} "
          f"[{time.perf_counter() - t1:.1f}s]")

    report = analyze_placement(netlist, final, gamma=args.gamma,
                               metrics=result.metrics)
    print(report.render())

    aux = write_aux(netlist, final, args.out,
                    design=f"{netlist.name}_placed")
    print(f"wrote {aux}")
    if args.svg:
        placement_svg(netlist, final, args.svg,
                      title=f"{netlist.name} ({args.placer})")
        print(f"wrote {args.svg}")

    if registry is not None and (args.report or args.run_dir):
        _emit_run_report(args, netlist, placer, final, registry,
                         recovery_events)
    return 0


def _fingerprints(netlist, placer) -> dict[str, str]:
    """Short stable digests identifying the design and the config."""
    digest = hashlib.sha256()
    digest.update(str((netlist.num_cells, netlist.num_nets)).encode())
    for array in (netlist.areas, netlist.widths, netlist.heights):
        digest.update(array.tobytes())
    out = {"netlist_fingerprint": digest.hexdigest()[:16]}
    config = getattr(placer, "config", None)
    if config is not None:
        try:
            doc = dataclasses.asdict(config)
        except TypeError:
            doc = {"repr": repr(config)}
        encoded = json.dumps(doc, sort_keys=True, default=str).encode()
        out["config_fingerprint"] = \
            hashlib.sha256(encoded).hexdigest()[:16]
    return out


def _emit_run_report(args, netlist, placer, final, registry,
                     recovery_events) -> None:
    """Render the run report and/or archive the run (place --report /
    --run-dir)."""
    tracer = telemetry.get_tracer()
    if tracer is not None:
        record_stage_totals(registry, tracer)
    if recovery_events:
        registry.meta["recovery_events"] = json.dumps(recovery_events)
    registry.meta.update(_fingerprints(netlist, placer))
    bins = default_grid_shape(netlist.num_movable)
    grid = DensityGrid(netlist, bins, bins)
    density = grid.utilization(grid.usage(final), args.gamma)
    diagnosis = diagnose(registry, config=getattr(placer, "config", None),
                         recovery_events=recovery_events)
    run_report = build_report(
        registry, title=f"{netlist.name} ({args.placer})",
        diagnosis=diagnosis, density=density,
        recovery_events=recovery_events)
    if args.report:
        write_report(args.report, run_report)
        print(f"wrote {args.report}")
        if not diagnosis.ok:
            print(diagnosis.render())
    if args.run_dir:
        run_dir = RunRegistry(args.run_dir).capture(
            registry, name=netlist.name,
            report_html=render_html(run_report), tracer=tracer)
        print(f"captured {run_dir}")


def cmd_generate(args: argparse.Namespace) -> int:
    """Materialize a synthetic suite as Bookshelf files."""
    design = load_suite(args.suite, scale=args.scale)
    netlist = design.netlist
    placement = netlist.initial_placement()
    aux = write_aux(netlist, placement, args.out)
    print(f"generated {netlist}")
    print(f"wrote {aux}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Quality report for an existing placement."""
    netlist, placement = read_aux(args.aux)
    report = analyze_placement(netlist, placement, gamma=args.gamma)
    print(report.render())
    if args.report:
        registry = telemetry.MetricsRegistry()
        registry.meta["netlist"] = netlist.name
        registry.gauge("hpwl").set(report.hpwl)
        registry.gauge("density_overflow_percent").set(
            report.density.overflow_percent)
        registry.gauge("density_max_utilization").set(
            report.density.max_utilization)
        registry.gauge("net_hpwl_p95").set(report.net_lengths.p95)
        registry.gauge("legal").set(1.0 if report.legal else 0.0)
        bins = default_grid_shape(netlist.num_movable)
        grid = DensityGrid(netlist, bins, bins)
        density = grid.utilization(grid.usage(placement), args.gamma)
        write_report(args.report, build_report(
            registry, title=f"analysis: {netlist.name}", density=density))
        print(f"wrote {args.report}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # Forwarded verbatim to the service's own parser (lazy import:
        # the serve stack pulls in multiprocessing plumbing the other
        # commands never need).  argparse.REMAINDER mangles leading
        # dashed options, hence the manual dispatch.
        from .serve.__main__ import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "race":
        # Same manual dispatch for the racing runtime.
        from .race.__main__ import main as race_main

        return race_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ComPLx placement flows over Bookshelf designs.",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="show library log messages "
                             "(-v info, -vv debug)")
    sub = parser.add_subparsers(dest="command", required=True)

    place_parser = sub.add_parser(
        "place", help="place a Bookshelf design end to end")
    _add_place_args(place_parser)
    place_parser.set_defaults(func=cmd_place)

    gen_parser = sub.add_parser(
        "generate", help="write a synthetic suite as Bookshelf files")
    gen_parser.add_argument("suite", choices=suite_names())
    gen_parser.add_argument("--scale", type=float, default=0.2)
    gen_parser.add_argument("--out", default="generated")
    gen_parser.set_defaults(func=cmd_generate)

    analyze_parser = sub.add_parser(
        "analyze", help="quality report for a design's .pl placement")
    analyze_parser.add_argument("aux")
    analyze_parser.add_argument("--gamma", type=float, default=1.0)
    analyze_parser.add_argument("--report", default=None, metavar="PATH",
                                help="write a density/quality report "
                                     "(.md Markdown, else HTML)")
    analyze_parser.set_defaults(func=cmd_analyze)

    # Shown in --help only; "serve" and "race" are dispatched before
    # parsing above.
    sub.add_parser(
        "serve", help="run the placement job service "
                      "(python -m repro.serve for the full option set)")
    sub.add_parser(
        "race", help="race a config portfolio with doctor-driven kills "
                     "(python -m repro.race for the full option set)")

    args = parser.parse_args(argv)
    if args.verbose:
        level = logging.INFO if args.verbose == 1 else logging.DEBUG
        logging.basicConfig(
            level=level,
            format="%(levelname)s %(name)s: %(message)s",
            stream=sys.stderr,
        )
        logging.getLogger("repro").setLevel(level)
    try:
        return args.func(args)
    except (BookshelfError, CheckpointError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
