"""Convergence metrics: counters, gauges and per-iteration series.

The :class:`MetricsRegistry` is the canonical store for everything a
ComPLx run measures about itself — the per-iteration trajectories the
paper plots (lambda, Pi, Phi, the Lagrangian), solver diagnostics (CG
iterations/residual), density overflow and stage byproducts (legalizer
displacement).  The registry round-trips through JSONL so trajectories
can be archived next to ``BENCH_*.json`` files and re-plotted without
re-running the placer.

Three instrument kinds:

* :class:`Counter` — monotonically accumulating total (``inc``),
* :class:`Gauge` — last-write-wins scalar (``set``),
* :class:`Series` — (iteration, value) pairs, the per-iteration
  trajectories (``record``).

A module-level *active registry* mirrors the tracer protocol: stage
code outside the placer loop (legalizers, solvers) records into
:func:`get_metrics` when one is installed and pays a single None check
otherwise.
"""

from __future__ import annotations

import contextlib
import csv
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Series",
    "get_metrics",
    "metrics",
    "set_metrics",
]


@dataclass
class Counter:
    """Accumulating total, e.g. total CG iterations across a run."""

    name: str
    value: float = 0.0
    # Counters are bumped from worker threads (the per-axis solves, the
    # serve runtime's job monitors), so the increment is locked.
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def to_json(self) -> dict[str, Any]:
        return {"kind": "counter", "name": self.name, "value": self.value}


@dataclass
class Gauge:
    """Last-write-wins scalar, e.g. the most recent legalizer displacement."""

    name: str
    value: float = 0.0
    updates: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.updates += 1

    def to_json(self) -> dict[str, Any]:
        return {"kind": "gauge", "name": self.name, "value": self.value,
                "updates": self.updates}


@dataclass
class Series:
    """A per-iteration trajectory: parallel (iteration, value) lists."""

    name: str
    iterations: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, iteration: int, value: float) -> None:
        self.iterations.append(int(iteration))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return self.values[-1]

    def as_array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=np.float64)

    def iteration_array(self) -> np.ndarray:
        return np.asarray(self.iterations, dtype=np.int64)

    def truncate(self, length: int) -> None:
        """Drop entries beyond ``length`` (supervisor rollback support)."""
        del self.iterations[length:]
        del self.values[length:]

    def to_json(self) -> dict[str, Any]:
        return {"kind": "series", "name": self.name,
                "iterations": self.iterations, "values": self.values}


class MetricsRegistry:
    """Named counters, gauges and series plus free-form string metadata."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._series: dict[str, Series] = {}
        self.meta: dict[str, str] = {}

    # ------------------------------------------------------------------
    # instrument accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def series(self, name: str) -> Series:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = Series(name)
        return series

    def has_series(self, name: str) -> bool:
        return name in self._series

    def series_names(self) -> list[str]:
        """Series names in insertion (recording) order."""
        return list(self._series)

    def counters(self) -> dict[str, float]:
        return {name: c.value for name, c in self._counters.items()}

    def gauges(self) -> dict[str, float]:
        return {name: g.value for name, g in self._gauges.items()}

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------
    def record_iteration(self, iteration: int, **values: float) -> None:
        """Record one value into several series at the same iteration."""
        for name, value in values.items():
            self.series(name).record(iteration, value)

    def truncate_series(self, length: int) -> None:
        """Trim every series to ``length`` entries (rollback support)."""
        for series in self._series.values():
            series.truncate(length)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters add, gauges take the other's latest value, series are
        adopted wholesale (name collisions: the other registry wins).
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            if gauge.updates:
                self.gauge(name).set(gauge.value)
        for name, series in other._series.items():
            ours = self.series(name)
            ours.iterations = list(series.iterations)
            ours.values = list(series.values)
        self.meta.update(other.meta)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "meta": dict(self.meta),
            "counters": [c.to_json() for c in self._counters.values()],
            "gauges": [g.to_json() for g in self._gauges.values()],
            "series": [s.to_json() for s in self._series.values()],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.meta.update(doc.get("meta", {}))
        for item in doc.get("counters", []):
            registry.counter(item["name"]).inc(float(item["value"]))
        for item in doc.get("gauges", []):
            gauge = registry.gauge(item["name"])
            gauge.value = float(item["value"])
            gauge.updates = int(item.get("updates", 1))
        for item in doc.get("series", []):
            series = registry.series(item["name"])
            series.iterations = [int(i) for i in item["iterations"]]
            series.values = [float(v) for v in item["values"]]
        return registry

    def write_json(self, path: str) -> str:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
        return path

    def write_jsonl(self, path: str) -> str:
        """One instrument per line: meta first, then counters, gauges,
        series in insertion order."""
        with open(path, "w") as handle:
            if self.meta:
                handle.write(json.dumps(
                    {"kind": "meta", "values": self.meta}) + "\n")
            for group in (self._counters, self._gauges, self._series):
                for instrument in group.values():
                    handle.write(json.dumps(instrument.to_json()) + "\n")
        return path

    @classmethod
    def read_jsonl(cls, path: str) -> "MetricsRegistry":
        registry = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                item = json.loads(line)
                kind = item.get("kind")
                if kind == "meta":
                    registry.meta.update(item["values"])
                elif kind == "counter":
                    registry.counter(item["name"]).inc(float(item["value"]))
                elif kind == "gauge":
                    gauge = registry.gauge(item["name"])
                    gauge.value = float(item["value"])
                    gauge.updates = int(item.get("updates", 1))
                elif kind == "series":
                    series = registry.series(item["name"])
                    series.iterations = [int(i) for i in item["iterations"]]
                    series.values = [float(v) for v in item["values"]]
                else:
                    raise ValueError(
                        f"{path}: unknown instrument kind {kind!r}")
        return registry

    def write_csv(self, path: str, series_names: list[str] | None = None,
                  index: str = "iteration") -> str:
        """Aligned iteration series as one CSV table.

        All exported series must share the same iteration index (true
        for the per-iteration placer series).  Column order follows
        ``series_names`` (default: insertion order).
        """
        names = series_names if series_names is not None else self.series_names()
        columns = [self.series(n) for n in names]
        if columns:
            length = len(columns[0])
            for column in columns:
                if len(column) != length:
                    raise ValueError(
                        f"series {column.name!r} has {len(column)} entries, "
                        f"expected {length}; CSV export needs aligned series"
                    )
            iterations = columns[0].iterations
        else:
            iterations = []
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([index, *names])
            for i, iteration in enumerate(iterations):
                writer.writerow([iteration, *(c.values[i] for c in columns)])
        return path


# ----------------------------------------------------------------------
# the module-level active registry
# ----------------------------------------------------------------------
_ACTIVE: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry | None:
    """The installed cross-stage registry, or None when disabled."""
    return _ACTIVE


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or with None, remove) the active registry; returns the
    previous one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextlib.contextmanager
def metrics(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Scoped installation mirroring :func:`repro.telemetry.tracing`."""
    if registry is None:
        registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
