"""Observability for the placement flow: tracing spans + metrics.

Two cooperating pieces, both disabled (zero overhead) by default:

* :mod:`repro.telemetry.tracer` — nested wall/CPU-time spans over the
  hot stages (B2B rebuild, CG solve, look-ahead legalization, ...),
  exported as JSONL or a Chrome-trace file,
* :mod:`repro.telemetry.metrics` — counters, gauges and per-iteration
  series (lambda, Pi, Phi, HPWL, CG iterations, overflow, ...) with a
  JSONL round-trip.

Enable either for a block of code::

    from repro import telemetry

    with telemetry.tracing() as tracer, telemetry.metrics() as registry:
        result = place(netlist)
    tracer.write_chrome_trace("place.trace.json")
    registry.write_jsonl("place.metrics.jsonl")

See ``docs/observability.md`` for the full tour, and
:mod:`repro.bench` for the regression harness built on top.
"""

from .distributed import (
    FleetAggregator,
    TelemetryShipper,
    TraceContext,
    TraceMerger,
)
from .memory import peak_rss_mb, record_stage_memory
from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Series,
    get_metrics,
    metrics,
    set_metrics,
)
from .prometheus import sanitize_metric_name, to_prometheus
from .tracer import (
    NULL_SPAN,
    SpanRecord,
    StageStats,
    Tracer,
    get_tracer,
    instant,
    set_tracer,
    span,
    traced,
    tracing,
)

__all__ = [
    "NULL_SPAN",
    "Counter",
    "FleetAggregator",
    "Gauge",
    "MetricsRegistry",
    "Series",
    "SpanRecord",
    "StageStats",
    "TelemetryShipper",
    "TraceContext",
    "TraceMerger",
    "Tracer",
    "get_metrics",
    "get_tracer",
    "instant",
    "metrics",
    "peak_rss_mb",
    "record_stage_memory",
    "sanitize_metric_name",
    "set_metrics",
    "set_tracer",
    "span",
    "to_prometheus",
    "traced",
    "tracing",
]
