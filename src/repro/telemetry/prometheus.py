"""Prometheus text exposition of a metrics registry snapshot.

The serve ``/metricz`` endpoint speaks JSON by default; Prometheus (and
everything that scrapes its text format) wants::

    # TYPE repro_jobs_running gauge
    repro_jobs_running 2

This module renders either a live
:class:`~repro.telemetry.MetricsRegistry` or its serialized
``to_dict()`` form into text exposition format 0.0.4.  Metric names are
sanitized to the Prometheus grammar (``[a-zA-Z_:][a-zA-Z0-9_:]*``):
every illegal character becomes ``_``, a leading digit gets a ``_``
prefix, and collisions after sanitization keep the first writer (later
ones are suffixed ``_2``, ``_3``, ... so nothing is silently lost).

Series (per-iteration trajectories) are summarized as their last value
— a scrape wants current state, not history; the JSON form keeps the
full series for everything else.
"""

from __future__ import annotations

import re
from typing import Any

from .metrics import MetricsRegistry

__all__ = ["sanitize_metric_name", "to_prometheus"]

#: Content type a compliant scraper expects.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_DIGIT = re.compile(r"^[0-9]")


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """A Prometheus-legal metric name for ``name``.

    ``prefix`` (e.g. ``"repro_"``) is applied before the grammar check
    so a prefixed name never needs the leading-digit escape.
    """
    cleaned = _ILLEGAL.sub("_", f"{prefix}{name}")
    if not cleaned:
        cleaned = "_"
    if _LEADING_DIGIT.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def _unique(name: str, taken: dict[str, int]) -> str:
    count = taken.get(name, 0)
    taken[name] = count + 1
    return name if count == 0 else f"{name}_{count + 1}"


def _fmt(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(source: "MetricsRegistry | dict[str, Any]",
                  prefix: str = "repro_") -> str:
    """Render a registry (or its ``to_dict`` form) as text exposition.

    Counters keep their monotone semantics (``# TYPE ... counter``),
    gauges and series-last-values are gauges.  Output order is the
    document order within each kind, so two renders of the same
    snapshot are identical.
    """
    doc = source.to_dict() if isinstance(source, MetricsRegistry) \
        else source
    taken: dict[str, int] = {}
    lines: list[str] = []
    for item in doc.get("counters", []):
        name = _unique(sanitize_metric_name(item["name"], prefix), taken)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(item['value'])}")
    for item in doc.get("gauges", []):
        name = _unique(sanitize_metric_name(item["name"], prefix), taken)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(item['value'])}")
    for item in doc.get("series", []):
        values = item.get("values") or []
        if not values:
            continue
        name = _unique(
            sanitize_metric_name(f"{item['name']}_last", prefix), taken)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(values[-1])}")
    return "\n".join(lines) + "\n" if lines else ""
