"""Per-stage peak-memory gauges (RSS + optional tracemalloc).

Placement memory is dominated by a few stages (system assembly, the
density grid, legalizer row maps); a run report that can say *which*
stage peaked is worth far more than a single end-of-run number.  This
module records, at stage boundaries:

* ``mem_<stage>_peak_rss_mb`` — the process peak resident set size at
  the end of the stage, from ``resource.getrusage``.  The kernel
  counter is monotone over the process lifetime, so per-stage gauges
  read as "peak so far when this stage finished"; the first stage to
  raise the value is the one that allocated it.
* ``mem_<stage>_traced_mb`` / ``mem_<stage>_traced_peak_mb`` — current
  and peak Python-heap usage from :mod:`tracemalloc`, recorded only
  when the caller has started tracing (``tracemalloc.start()``);
  tracing costs real time, so the probe never turns it on itself.

Zero overhead when disabled: like every probe, the recorder returns
after one None check when no :class:`~repro.telemetry.MetricsRegistry`
is installed, and it never touches placement state.
"""

from __future__ import annotations

import resource
import sys
import tracemalloc

from .metrics import get_metrics

__all__ = ["peak_rss_mb", "record_stage_memory"]


def peak_rss_mb() -> float:
    """Process peak resident set size, in MiB.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 2**20 if sys.platform == "darwin" else 1024
    return float(peak) / divisor


def record_stage_memory(stage: str) -> None:
    """Record memory gauges for a completed stage, if metrics are on."""
    registry = get_metrics()
    if registry is None:
        return
    registry.gauge(f"mem_{stage}_peak_rss_mb").set(peak_rss_mb())
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        registry.gauge(f"mem_{stage}_traced_mb").set(current / 2**20)
        registry.gauge(f"mem_{stage}_traced_peak_mb").set(peak / 2**20)
