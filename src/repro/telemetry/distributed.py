"""The distributed telemetry plane: cross-process tracing and rollup.

The serve and race runtimes execute every placement attempt in its own
``multiprocessing.Process``.  Before this module, whatever that worker
measured about itself — spans, per-iteration series, memory gauges —
died with the process: the parent saw progress events and a terminal
result, nothing more.  Four cooperating pieces fix that:

* :class:`TraceContext` — the propagation token.  The parent (the serve
  :class:`~repro.serve.runtime.JobRuntime`, the race
  :class:`~repro.race.controller.RaceController`) mints one per job or
  race, derives a child context per worker with a stable integer
  *lane*, and ships it inside the worker payload.  A worker that finds
  no context in its payload ships nothing and allocates nothing — the
  repo's zero-overhead-when-disabled contract extends across the
  process boundary.
* :class:`TelemetryShipper` — the worker side.  Wraps the worker's
  local :class:`~repro.telemetry.Tracer`/
  :class:`~repro.telemetry.MetricsRegistry` and, at natural flush
  points (progress emits, checkpoints, the terminal message), builds a
  bounded *telemetry frame*: the span records completed since the last
  frame, series increments, gauge values and counter deltas.  Budgets
  are enforced per frame and per worker; overflow is *counted*, never
  silent.
* :class:`TraceMerger` — the parent side.  Accumulates frames per
  worker plus the parent's own spans and renders one Chrome-trace
  document for the whole job/race: parent on pid 1, each worker on its
  context's lane pid with a named process, worker-internal thread
  lanes (the PR 4 per-axis solver tids) preserved.  The merge is a
  pure function of the observed frames, so re-rendering the same
  evidence is byte-identical — tested.
* :class:`FleetAggregator` — the rollup.  Folds every worker's frames
  into one fleet-wide registry snapshot: counters sum, gauges keep
  last-and-max, span durations feed bounded per-stage reservoirs that
  answer with medians, and service times feed an EWMA.  The serve
  ``/metricz`` endpoint merges this snapshot with the service's own
  counters.

Wire format (one frame)::

    {"v": 1, "trace_id": ..., "worker": ..., "lane": 3, "seq": 2,
     "epoch": 12345.678,            # perf_counter at tracer origin
     "spans": [<SpanRecord.to_json() + "tid">, ...],
     "series": {"lam": {"iterations": [...], "values": [...]}, ...},
     "gauges": {...}, "counters": {...},
     "dropped_spans": 0}

Frames ride the existing worker result pipes as ``("telemetry", frame)``
messages; nothing about the transport is new.
"""

from __future__ import annotations

import statistics
import threading
import time
from dataclasses import dataclass
from typing import Any

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "FleetAggregator",
    "TelemetryShipper",
    "TraceContext",
    "TraceMerger",
]

#: Frame protocol version; bumped only on incompatible layout changes.
FRAME_VERSION = 1

#: Default budget of span records in one frame.
DEFAULT_FRAME_RECORDS = 256

#: Default budget of span records one worker may ship in total.
DEFAULT_TOTAL_RECORDS = 5000


@dataclass(frozen=True)
class TraceContext:
    """The cross-process trace propagation token.

    ``trace_id`` names the whole distributed trace (one job, one race);
    ``parent_span`` is the parent-side span the worker's spans nest
    under; ``worker`` labels this process's lane in the merged view and
    ``lane`` is its stable Chrome-trace pid (>= 2; pid 1 is the
    parent).  The record budgets ride along so the worker needs no
    other configuration.
    """

    trace_id: str
    parent_span: str = "root"
    worker: str = "parent"
    lane: int = 1
    max_frame_records: int = DEFAULT_FRAME_RECORDS
    max_total_records: int = DEFAULT_TOTAL_RECORDS

    def child(self, worker: str, lane: int) -> "TraceContext":
        """Derive the context handed to one worker process."""
        if lane < 2:
            raise ValueError("worker lanes start at 2 (pid 1 is the parent)")
        return TraceContext(
            trace_id=self.trace_id,
            parent_span=self.parent_span,
            worker=worker,
            lane=int(lane),
            max_frame_records=self.max_frame_records,
            max_total_records=self.max_total_records,
        )

    def to_wire(self) -> dict[str, Any]:
        """The JSON-safe form carried inside a worker payload."""
        return {
            "trace_id": self.trace_id,
            "parent_span": self.parent_span,
            "worker": self.worker,
            "lane": self.lane,
            "max_frame_records": self.max_frame_records,
            "max_total_records": self.max_total_records,
        }

    @classmethod
    def from_wire(cls, doc: dict[str, Any] | None) -> "TraceContext | None":
        """Rebuild a context from a payload entry; None stays None.

        The None passthrough is the worker-side gate: payloads from a
        runtime with tracing disabled simply lack the entry, and every
        shipping call site guards on the rebuilt context being
        installed.
        """
        if doc is None:
            return None
        return cls(
            trace_id=str(doc["trace_id"]),
            parent_span=str(doc.get("parent_span", "root")),
            worker=str(doc.get("worker", "worker")),
            lane=int(doc.get("lane", 2)),
            max_frame_records=int(doc.get("max_frame_records",
                                          DEFAULT_FRAME_RECORDS)),
            max_total_records=int(doc.get("max_total_records",
                                          DEFAULT_TOTAL_RECORDS)),
        )


class TelemetryShipper:
    """Worker-side incremental frame builder (bounded, drop-counting).

    One shipper wraps one worker attempt's tracer and registry.  Every
    :meth:`flush_frame` call collects what completed since the previous
    frame; the caller sends the returned dict over its pipe (or drops
    it — the shipper's cursors only advance for what it handed out).

    Budgets: at most ``context.max_frame_records`` span records per
    frame and ``context.max_total_records`` per worker lifetime.  Spans
    beyond a budget are dropped *newest-last* (the early spans describe
    setup, the steady-state loop is self-similar) and counted in the
    frame's ``dropped_spans`` so the parent can surface the loss.
    Series increments, gauges and counters are small by construction
    (one float per name per flush) and ship unbounded.
    """

    def __init__(self, context: TraceContext, tracer: Tracer,
                 registry: MetricsRegistry | None = None) -> None:
        self.context = context
        self.tracer = tracer
        self.registry = registry
        self.dropped_spans = 0
        self._seq = 0
        self._spans_sent = 0      # index into tracer.records
        self._total_shipped = 0   # span records shipped so far
        self._series_sent: dict[str, int] = {}
        self._counters_seen: dict[str, float] = {}
        # Workers and the parent share CLOCK_MONOTONIC on the platforms
        # this repo targets, so shipping the tracer origin lets the
        # merger place worker spans on the parent's timeline.
        self._epoch = time.perf_counter()
        self._epoch_sent = False

    # ------------------------------------------------------------------
    def _collect_spans(self) -> list[dict[str, Any]]:
        records = self.tracer.records
        new = records[self._spans_sent:]
        self._spans_sent = len(records)
        budget = min(
            self.context.max_frame_records,
            max(self.context.max_total_records - self._total_shipped, 0),
        )
        if len(new) > budget:
            self.dropped_spans += len(new) - budget
            new = new[:budget]
        self._total_shipped += len(new)
        out = []
        for record in new:
            doc = record.to_json()
            doc["tid"] = record.tid
            out.append(doc)
        return out

    def _collect_series(self) -> dict[str, dict[str, list[float]]]:
        if self.registry is None:
            return {}
        out: dict[str, dict[str, list[float]]] = {}
        for name in self.registry.series_names():
            series = self.registry.series(name)
            sent = self._series_sent.get(name, 0)
            if len(series) > sent:
                out[name] = {
                    "iterations": list(series.iterations[sent:]),
                    "values": list(series.values[sent:]),
                }
                self._series_sent[name] = len(series)
        return out

    def _collect_scalars(self) -> tuple[dict[str, float], dict[str, float]]:
        if self.registry is None:
            return {}, {}
        gauges = dict(self.registry.gauges())
        deltas: dict[str, float] = {}
        for name, value in self.registry.counters().items():
            prior = self._counters_seen.get(name, 0.0)
            if value != prior:
                deltas[name] = value - prior
                self._counters_seen[name] = value
        return gauges, deltas

    # ------------------------------------------------------------------
    def flush_frame(self, force: bool = False) -> dict[str, Any] | None:
        """The next telemetry frame, or None when nothing new happened.

        ``force=True`` (the terminal flush) always returns a frame so
        the parent is guaranteed a final drop count even for a worker
        whose every span was shed.
        """
        spans = self._collect_spans()
        series = self._collect_series()
        gauges, counters = self._collect_scalars()
        if not (spans or series or gauges or counters or force):
            return None
        self._seq += 1
        frame: dict[str, Any] = {
            "v": FRAME_VERSION,
            "trace_id": self.context.trace_id,
            "worker": self.context.worker,
            "lane": self.context.lane,
            "seq": self._seq,
            "spans": spans,
            "series": series,
            "gauges": gauges,
            "counters": counters,
            "dropped_spans": self.dropped_spans,
        }
        if not self._epoch_sent:
            frame["epoch"] = self._epoch
            self._epoch_sent = True
        return frame


class TraceMerger:
    """Parent-side accumulator rendering one merged Chrome trace.

    ``ingest`` folds worker frames in arrival order; ``add_span`` /
    ``add_instant`` record parent-side (controller/runtime) intervals
    on pid 1.  :meth:`chrome_trace` renders the merged document — a
    pure function of everything ingested, so rendering twice from the
    same evidence is byte-identical.

    All mutators hold an internal lock: the serve runtime feeds a
    merger from per-job monitor threads, so the merge state must not
    assume single-threaded access.
    """

    def __init__(self, context: TraceContext,
                 process_name: str = "repro") -> None:
        self.context = context
        self.process_name = process_name
        #: perf_counter value all merged timestamps are relative to.
        self.origin = time.perf_counter()
        self._lock = threading.Lock()
        self._parent_events: list[dict[str, Any]] = []
        self._workers: dict[str, dict[str, Any]] = {}
        self._frames = 0

    # ------------------------------------------------------------------
    # parent-side spans (pid 1)
    # ------------------------------------------------------------------
    def add_span(self, name: str, start: float, end: float,
                 **attrs: Any) -> None:
        """Record a parent interval (``time.perf_counter`` readings)."""
        event = {
            "name": name,
            "ph": "X",
            "ts": (start - self.origin) * 1e6,
            "dur": (end - start) * 1e6,
            "pid": 1,
            "tid": 1,
            "cat": self.context.trace_id,
            "args": dict(attrs),
        }
        with self._lock:
            self._parent_events.append(event)

    def add_instant(self, name: str, at: float, **attrs: Any) -> None:
        event = {
            "name": name,
            "ph": "i",
            "s": "t",
            "ts": (at - self.origin) * 1e6,
            "pid": 1,
            "tid": 1,
            "cat": self.context.trace_id,
            "args": dict(attrs),
        }
        with self._lock:
            self._parent_events.append(event)

    # ------------------------------------------------------------------
    # worker frames
    # ------------------------------------------------------------------
    def ingest(self, frame: dict[str, Any]) -> None:
        """Fold one worker telemetry frame into the merge state."""
        worker = str(frame.get("worker", "worker"))
        with self._lock:
            state = self._workers.get(worker)
            if state is None:
                state = self._workers[worker] = {
                    "lane": int(frame.get("lane", 2)),
                    "epoch": None,
                    "spans": [],
                    "dropped": 0,
                    "frames": 0,
                }
            if frame.get("epoch") is not None:
                state["epoch"] = float(frame["epoch"])
            state["spans"].extend(frame.get("spans", ()))
            state["dropped"] = int(frame.get("dropped_spans", 0))
            state["frames"] += 1
            self._frames += 1

    @property
    def frames_observed(self) -> int:
        with self._lock:
            return self._frames

    @property
    def workers(self) -> list[str]:
        with self._lock:
            return sorted(self._workers)

    def dropped_spans(self) -> int:
        """Total spans the workers had to shed under their budgets."""
        with self._lock:
            return sum(state["dropped"]
                       for state in self._workers.values())

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _worker_events(self, worker: str,
                       state: dict[str, Any]) -> list[dict[str, Any]]:
        pid = state["lane"]
        # Worker span timestamps are relative to the worker tracer's
        # origin; its shipped epoch places them on the parent timeline.
        # A missing epoch (never shipped) degrades to origin alignment.
        offset = 0.0
        if state["epoch"] is not None:
            offset = state["epoch"] - self.origin
        events: list[dict[str, Any]] = []
        tids = {1}
        for doc in state["spans"]:
            tids.add(int(doc.get("tid", 1)))
        for tid in sorted(tids):
            name = "main" if tid == 1 else f"solver-{tid}"
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            })
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": pid,
                "tid": tid, "args": {"sort_index": tid},
            })
        spans = sorted(state["spans"],
                       key=lambda d: (float(d.get("start_s", 0.0)),
                                      d.get("name", "")))
        for doc in spans:
            event: dict[str, Any] = {
                "name": doc.get("name", "span"),
                "cat": self.context.trace_id,
                "ph": "X" if doc.get("phase", "span") == "span" else "i",
                "ts": (float(doc.get("start_s", 0.0)) + offset) * 1e6,
                "pid": pid,
                "tid": int(doc.get("tid", 1)),
                "args": dict(doc.get("attrs", {})),
            }
            if doc.get("parent"):
                event["args"]["parent"] = doc["parent"]
            if event["ph"] == "X":
                event["dur"] = float(doc.get("duration_s", 0.0)) * 1e6
            else:
                event["s"] = "t"
            events.append(event)
        if state["dropped"]:
            events.append({
                "name": "telemetry_frames_dropped",
                "cat": self.context.trace_id,
                "ph": "i", "s": "p",
                "ts": 0.0, "pid": pid, "tid": 1,
                "args": {"dropped_spans": state["dropped"]},
            })
        return events

    def chrome_trace(self) -> dict[str, Any]:
        """The merged Chrome-trace document (pure; render any time)."""
        events: list[dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
            "args": {"name": f"{self.process_name} (parent)"},
        }, {
            "name": "process_sort_index", "ph": "M", "pid": 1, "tid": 1,
            "args": {"sort_index": 1},
        }, {
            "name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
            "args": {"name": "main"},
        }]
        with self._lock:
            events.extend(sorted(self._parent_events,
                                 key=lambda e: (e["ts"], e["name"])))
            for worker in sorted(self._workers):
                state = self._workers[worker]
                events.append({
                    "name": "process_name", "ph": "M",
                    "pid": state["lane"], "tid": 1,
                    "args": {"name": f"worker {worker}"},
                })
                events.append({
                    "name": "process_sort_index", "ph": "M",
                    "pid": state["lane"], "tid": 1,
                    "args": {"sort_index": state["lane"]},
                })
                events.extend(self._worker_events(worker, state))
            return {
                "traceEvents": events,
                "displayTimeUnit": "ms",
                "otherData": {
                    "trace_id": self.context.trace_id,
                    "workers": sorted(self._workers),
                    "dropped_spans": sum(
                        state["dropped"]
                        for state in self._workers.values()),
                },
            }


class FleetAggregator:
    """Fleet-wide rollup of per-worker telemetry (thread-safe enough).

    The serve runtime feeds it from per-job monitor threads; every
    mutation is a single dict/list operation on structures only this
    class touches, guarded by the caller holding no lock — so the
    aggregator takes its own.  Snapshots are consistent.

    Rollup semantics:

    * counters — summed across workers and frames (frames carry
      deltas),
    * gauges — last write wins, with a parallel ``*_max`` watermark,
    * span durations — per-name bounded reservoir (newest kept) whose
      snapshot reports the median and count,
    * service times — exponentially weighted moving average.
    """

    def __init__(self, ewma_alpha: float = 0.2,
                 reservoir: int = 256) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in (0, 1]")
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        self._lock = threading.Lock()
        self.ewma_alpha = ewma_alpha
        self.reservoir = reservoir
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._gauge_max: dict[str, float] = {}
        self._stage_durations: dict[str, list[float]] = {}
        self._service_ewma: float | None = None
        self._frames = 0
        self._workers: set[str] = set()
        self._dropped_spans: dict[str, int] = {}

    # ------------------------------------------------------------------
    def observe_frame(self, frame: dict[str, Any]) -> None:
        """Fold one worker telemetry frame into the fleet state."""
        with self._lock:
            self._frames += 1
            worker = str(frame.get("worker", "worker"))
            self._workers.add(worker)
            self._dropped_spans[worker] = int(frame.get("dropped_spans", 0))
            for name, delta in frame.get("counters", {}).items():
                self._counters[name] = \
                    self._counters.get(name, 0.0) + float(delta)
            for name, value in frame.get("gauges", {}).items():
                value = float(value)
                self._gauges[name] = value
                if value > self._gauge_max.get(name, float("-inf")):
                    self._gauge_max[name] = value
            for doc in frame.get("spans", ()):
                if doc.get("phase", "span") != "span":
                    continue
                name = str(doc.get("name", "span"))
                bucket = self._stage_durations.setdefault(name, [])
                bucket.append(float(doc.get("duration_s", 0.0)))
                if len(bucket) > self.reservoir:
                    del bucket[:len(bucket) - self.reservoir]

    def note_service_seconds(self, seconds: float) -> None:
        """Feed one completed attempt's service time into the EWMA."""
        with self._lock:
            if self._service_ewma is None:
                self._service_ewma = float(seconds)
            else:
                self._service_ewma += self.ewma_alpha * (
                    float(seconds) - self._service_ewma)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready consistent view of the fleet state."""
        with self._lock:
            stages = {
                name: {
                    "count": len(values),
                    "median_s": statistics.median(values),
                }
                for name, values in sorted(self._stage_durations.items())
                if values
            }
            doc: dict[str, Any] = {
                "frames": self._frames,
                "workers": sorted(self._workers),
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "gauge_max": dict(sorted(self._gauge_max.items())),
                "stages": stages,
                "dropped_spans": sum(self._dropped_spans.values()),
            }
            if self._service_ewma is not None:
                doc["service_seconds_ewma"] = self._service_ewma
            return doc

    def to_registry(self) -> MetricsRegistry:
        """The fleet snapshot as a ``fleet_``-prefixed registry."""
        snap = self.snapshot()
        registry = MetricsRegistry()
        registry.meta["component"] = "repro.telemetry.fleet"
        registry.counter("fleet_frames").inc(float(snap["frames"]))
        registry.gauge("fleet_workers").set(float(len(snap["workers"])))
        registry.counter("fleet_dropped_spans").inc(
            float(snap["dropped_spans"]))
        for name, value in snap["counters"].items():
            registry.counter(f"fleet_{name}").inc(float(value))
        for name, value in snap["gauges"].items():
            registry.gauge(f"fleet_{name}").set(float(value))
        for name, value in snap["gauge_max"].items():
            registry.gauge(f"fleet_{name}_max").set(float(value))
        for name, stats in snap["stages"].items():
            registry.gauge(f"fleet_stage_{name}_median_s").set(
                stats["median_s"])
            registry.gauge(f"fleet_stage_{name}_count").set(
                float(stats["count"]))
        if "service_seconds_ewma" in snap:
            registry.gauge("fleet_service_seconds_ewma").set(
                snap["service_seconds_ewma"])
        return registry
