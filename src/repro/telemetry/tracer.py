"""Tracing spans: nested wall/CPU timing of the placement pipeline.

A :class:`Tracer` records *spans* — named, nested intervals measured
with ``time.perf_counter`` (wall) and ``time.process_time`` (CPU) — and
*instants* (zero-duration annotations, e.g. recovery events).  Spans
are opened with a context manager or a decorator::

    tracer = Tracer()
    with tracing(tracer):
        with span("cg_solve", axis="x") as sp:
            ...
            sp.annotate("iterations", 42)

    tracer.write_jsonl("run.trace.jsonl")          # one span per line
    tracer.write_chrome_trace("run.trace.json")    # chrome://tracing

Zero overhead when disabled
---------------------------
No tracer is installed by default.  The module-level :func:`span` and
:func:`instant` helpers check the active tracer and, when none is
installed, return the shared :data:`NULL_SPAN` singleton / return
immediately — no allocation, no record, no timing call.  Instrumented
hot paths therefore pay a single attribute load and comparison per
call site.
"""

from __future__ import annotations

import contextlib
import functools
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "NULL_SPAN",
    "SpanRecord",
    "StageStats",
    "Tracer",
    "get_tracer",
    "instant",
    "set_tracer",
    "span",
    "traced",
    "tracing",
]


@dataclass
class SpanRecord:
    """One completed span (or instant, when ``duration_s`` is 0 and
    ``phase`` is ``"instant"``)."""

    name: str
    start_s: float            # seconds since the tracer's origin (wall)
    duration_s: float         # wall-clock duration
    cpu_s: float              # CPU time consumed inside the span
    depth: int                # nesting depth (0 = top level)
    parent: str | None = None  # name of the enclosing open span
    phase: str = "span"       # "span" | "instant"
    attrs: dict[str, Any] = field(default_factory=dict)
    tid: int = 1              # logical thread lane (1 = main thread)

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "cpu_s": self.cpu_s,
            "depth": self.depth,
            "parent": self.parent,
            "phase": self.phase,
        }
        if self.tid != 1:
            out["tid"] = self.tid
        if self.attrs:
            out["attrs"] = self.attrs
        return out


@dataclass
class StageStats:
    """Aggregate of all spans sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    total_cpu_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def observe(self, duration_s: float, cpu_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        self.total_cpu_s += cpu_s
        self.min_s = min(self.min_s, duration_s)
        self.max_s = max(self.max_s, duration_s)

    def to_json(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "total_cpu_s": self.total_cpu_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _NullSpan:
    """Shared no-op span returned while tracing is disabled.

    A singleton: entering, exiting and annotating allocate nothing, so
    instrumented hot paths stay allocation-free when no tracer is
    installed.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, key: str, value: Any) -> None:
        pass


#: The singleton no-op span (identity-testable: ``span("x") is NULL_SPAN``).
NULL_SPAN = _NullSpan()


class _Span:
    """One live span; created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_cpu_start", "_depth",
                 "_parent")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def annotate(self, key: str, value: Any) -> None:
        """Attach a key/value to the span (shows up in ``args`` in the
        trace viewer)."""
        self.attrs[key] = value

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._depth = len(tracer._stack)
        self._parent = tracer._stack[-1].name if tracer._stack else None
        tracer._stack.append(self)
        self._cpu_start = time.process_time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        cpu_end = time.process_time()
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        tracer._close(self, end, cpu_end)
        return False


class Tracer:
    """Collects spans and instants for one run.

    Spans are recorded on *exit*, in completion order; sort by
    ``start_s`` to recover chronological opening order.  A tracer is
    single-threaded by design (the placer is single-threaded); nesting
    is tracked with an explicit span stack.
    """

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []
        self._stack: list[_Span] = []
        self._origin = time.perf_counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _Span:
        """A context manager timing the enclosed block."""
        return _Span(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """A zero-duration annotation event (e.g. a recovery action)."""
        self.records.append(SpanRecord(
            name=name,
            start_s=time.perf_counter() - self._origin,
            duration_s=0.0,
            cpu_s=0.0,
            depth=len(self._stack),
            parent=self._stack[-1].name if self._stack else None,
            phase="instant",
            attrs=attrs,
        ))

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        cpu_s: float = 0.0,
        tid: int = 1,
        **attrs: Any,
    ) -> None:
        """Append a span timed externally (``time.perf_counter`` values).

        The span stack is not thread-safe, so code running work off the
        main thread times it locally and records the completed interval
        from the main thread afterwards.  ``tid`` places the span on its
        own lane in the Chrome-trace export so concurrent work renders
        side by side.  Depth/parent come from the *current* main-thread
        stack — call this while the logical parent span is still open.
        """
        self.records.append(SpanRecord(
            name=name,
            start_s=start - self._origin,
            duration_s=end - start,
            cpu_s=cpu_s,
            depth=len(self._stack),
            parent=self._stack[-1].name if self._stack else None,
            attrs=attrs,
            tid=tid,
        ))

    def _close(self, live: _Span, end: float, cpu_end: float) -> None:
        self.records.append(SpanRecord(
            name=live.name,
            start_s=live._start - self._origin,
            duration_s=end - live._start,
            cpu_s=cpu_end - live._cpu_start,
            depth=live._depth,
            parent=live._parent,
            attrs=live.attrs,
        ))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def spans(self, name: str | None = None) -> list[SpanRecord]:
        """Completed spans (not instants), optionally filtered by name,
        in chronological (start) order."""
        out = [r for r in self.records
               if r.phase == "span" and (name is None or r.name == name)]
        out.sort(key=lambda r: r.start_s)
        return out

    def instants(self, name: str | None = None) -> list[SpanRecord]:
        return [r for r in self.records
                if r.phase == "instant" and (name is None or r.name == name)]

    def total(self, name: str) -> float:
        """Total wall seconds across all spans with this name."""
        return sum(r.duration_s for r in self.records
                   if r.phase == "span" and r.name == name)

    def aggregate(self) -> dict[str, StageStats]:
        """Per-name aggregate statistics over all completed spans.

        Durations are *inclusive* (a parent's total contains its
        children), so shares of distinct nesting levels do not add up
        to 100%.
        """
        out: dict[str, StageStats] = {}
        for record in self.records:
            if record.phase != "span":
                continue
            stats = out.get(record.name)
            if stats is None:
                stats = out[record.name] = StageStats(record.name)
            stats.observe(record.duration_s, record.cpu_s)
        return out

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def write_jsonl(self, path: str) -> str:
        """One JSON object per record, chronological by start time."""
        ordered = sorted(self.records, key=lambda r: r.start_s)
        with open(path, "w") as handle:
            for record in ordered:
                handle.write(json.dumps(record.to_json()) + "\n")
        return path

    def chrome_trace_events(self) -> list[dict[str, Any]]:
        """The Chrome-trace event list: process/thread metadata first,
        then spans/instants chronologically."""
        tids = sorted({record.tid for record in self.records} | {1})
        events: list[dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
            "args": {"name": "repro placer"},
        }]
        for tid in tids:
            name = "main" if tid == 1 else f"solver-{tid}"
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": name},
            })
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": 1,
                "tid": tid, "args": {"sort_index": tid},
            })
        for record in sorted(self.records, key=lambda r: r.start_s):
            event: dict[str, Any] = {
                "name": record.name,
                "cat": "placer",
                "ph": "X" if record.phase == "span" else "i",
                "ts": record.start_s * 1e6,
                "pid": 1,
                "tid": record.tid,
                "args": dict(record.attrs),
            }
            if record.phase == "span":
                event["dur"] = record.duration_s * 1e6
            else:
                event["s"] = "t"
            events.append(event)
        return events

    def write_chrome_trace(self, path: str) -> str:
        """Chrome trace format: load in ``chrome://tracing`` or
        https://ui.perfetto.dev (timestamps in microseconds)."""
        with open(path, "w") as handle:
            json.dump({"traceEvents": self.chrome_trace_events(),
                       "displayTimeUnit": "ms"}, handle)
        return path


# ----------------------------------------------------------------------
# the module-level active tracer
# ----------------------------------------------------------------------
_ACTIVE: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or None while tracing is disabled."""
    return _ACTIVE


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or with None, remove) the active tracer; returns the
    previous one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextlib.contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Scoped installation: ``with tracing() as t: ...`` traces the
    block and restores the previous tracer afterwards."""
    if tracer is None:
        tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attrs: Any) -> "_Span | _NullSpan":
    """Open a span on the active tracer; a shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record an instant annotation on the active tracer, if any."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, **attrs)


def traced(name: str | None = None) -> Callable:
    """Decorator form: time every call of the function as one span."""

    def decorate(func: Callable) -> Callable:
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = _ACTIVE
            if tracer is None:
                return func(*args, **kwargs)
            with tracer.span(span_name):
                return func(*args, **kwargs)

        return wrapper

    return decorate
