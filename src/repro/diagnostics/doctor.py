"""The detector battery behind :func:`diagnose`.

Each detector is a pure function over a :class:`DoctorContext` (recorded
series + config knobs + recovery events) yielding zero or more
:class:`~repro.diagnostics.findings.Finding`\\ s.  Detectors must be
conservative: a healthy run — lambda leaving its cap once Pi-ratio
growth takes over, Pi decaying, the gap closing — produces no findings.
Thresholds are tuned against the bench smoke suite's pinned-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from ..telemetry import MetricsRegistry
from .findings import Diagnosis, Finding

__all__ = ["DOCTOR_RULES", "DoctorContext", "diagnose"]


@dataclass
class DoctorContext:
    """Everything one detector pass can look at."""

    registry: MetricsRegistry
    lambda_growth_cap: float = 2.0
    gap_tol: float = 0.08
    recovery_events: list[dict[str, Any]] = field(default_factory=list)

    def series(self, name: str) -> np.ndarray:
        if not self.registry.has_series(name):
            return np.zeros(0, dtype=np.float64)
        return self.registry.series(name).as_array()

    def series_index(self, name: str) -> np.ndarray:
        if not self.registry.has_series(name):
            return np.zeros(0, dtype=np.int64)
        return self.registry.series(name).iteration_array()

    def counter(self, name: str) -> float:
        return self.registry.counters().get(name, 0.0)

    @property
    def stop_reason(self) -> str:
        return self.registry.meta.get("stop_reason", "")

    @property
    def iterations(self) -> int:
        return len(self.series("lam"))


Detector = Callable[[DoctorContext], Iterator[Finding]]


def _span(index: np.ndarray, mask: np.ndarray) -> tuple[int, int] | None:
    """(first, last) index values where ``mask`` holds."""
    where = np.flatnonzero(mask)
    if where.size == 0:
        return None
    return int(index[where[0]]), int(index[where[-1]])


# ----------------------------------------------------------------------
# D1: lambda saturating at its growth cap
# ----------------------------------------------------------------------
def detect_lambda_cap_saturation(ctx: DoctorContext) -> Iterator[Finding]:
    """Formula (12) caps lambda growth at ``growth_cap`` per iteration;
    the cap is *meant* to bind for the first few iterations and then
    hand over to Pi-proportional additive growth.  A schedule still
    pinned to the cap in the closing half of the run means the additive
    term never took over — lambda is exploding geometrically, and the
    anchors will crush wirelength before the gap closes."""
    lam = ctx.series("lam")
    index = ctx.series_index("lam")
    if lam.shape[0] < 6 or np.any(lam[:-1] <= 0):
        return
    ratios = lam[1:] / lam[:-1]
    capped = ratios >= ctx.lambda_growth_cap * (1.0 - 1e-9)
    half = capped.shape[0] // 2
    tail = capped[half:]
    if tail.size == 0:
        return
    fraction = float(tail.mean())
    if fraction < 0.6:
        return
    severity = "critical" if fraction >= 0.9 else "warning"
    yield Finding(
        rule="D1", name="lambda-cap-saturation", severity=severity,
        summary=(f"lambda hit its x{ctx.lambda_growth_cap:g} growth cap in "
                 f"{100 * fraction:.0f}% of the last "
                 f"{tail.shape[0]} updates (geometric growth never "
                 "handed over to the Pi-proportional term)"),
        iteration_range=_span(index[1:][half:], tail),
        suggestions=(
            "check Pi is actually decreasing (projection quality); a flat "
            "Pi keeps the additive term large",
            "lower lambda_h_factor so the additive branch of Formula (12) "
            "binds sooner",
            "if running lambda_mode='double', that ablation grows at the "
            "cap by construction — use mode 'complx'",
        ),
        evidence={"capped_fraction": fraction,
                  "growth_cap": float(ctx.lambda_growth_cap)},
    )


# ----------------------------------------------------------------------
# D2: Pi plateau or oscillation
# ----------------------------------------------------------------------
def detect_pi_stagnation(ctx: DoctorContext) -> Iterator[Finding]:
    """Pi (the L1 distance to feasibility, Formula 3) must trend to zero.
    A *plateau* far above zero means the primal step and the projection
    are fighting to a standstill; an *oscillation* is the local-optima
    trap — iterates bouncing between basins instead of settling."""
    pi = ctx.series("pi")
    index = ctx.series_index("pi")
    if pi.shape[0] < 8 or pi[0] <= 0:
        return
    window = max(4, pi.shape[0] // 3)
    tail = pi[-window:]
    tail_index = index[-window:]
    mean_tail = float(tail.mean())
    if mean_tail <= 0:
        return
    rel_range = float((tail.max() - tail.min()) / mean_tail)
    still_high = pi[-1] > 0.25 * pi[0]
    if still_high and rel_range < 0.05:
        yield Finding(
            rule="D2", name="pi-plateau", severity="warning",
            summary=(f"Pi plateaued at {pi[-1]:.4g} "
                     f"({100 * pi[-1] / pi[0]:.0f}% of its initial value) "
                     f"over the last {window} iterations"),
            iteration_range=(int(tail_index[0]), int(tail_index[-1])),
            suggestions=(
                "raise max_iterations only if Pi was still falling before "
                "the plateau; otherwise it will not help",
                "refine the grid sooner (smaller refine_every) so the "
                "projection stops moving cells between coarse bins",
                "lower gamma slack: a too-tight density target can make "
                "P_C displace the same cells every iteration",
            ),
            evidence={"pi_final": float(pi[-1]),
                      "pi_initial": float(pi[0]),
                      "relative_range": rel_range},
        )
        return
    diffs = np.diff(tail)
    if diffs.shape[0] >= 4:
        signs = np.sign(diffs)
        flips = float(np.count_nonzero(signs[1:] * signs[:-1] < 0))
        flip_rate = flips / (diffs.shape[0] - 1)
        swing = float(np.abs(diffs).mean() / mean_tail)
        if still_high and flip_rate >= 0.6 and swing > 0.15:
            yield Finding(
                rule="D2", name="pi-oscillation", severity="warning",
                summary=(f"Pi is oscillating (direction flips in "
                         f"{100 * flip_rate:.0f}% of the last {window} "
                         f"steps, mean swing {100 * swing:.0f}% of its "
                         "level) instead of decaying"),
                iteration_range=(int(tail_index[0]), int(tail_index[-1])),
                suggestions=(
                    "damp the schedule: smaller lambda_h_factor or "
                    "lambda_growth_cap slows the anchor strength ramp",
                    "increase init_sweeps so the primal iterate starts "
                    "closer to its fixed point",
                ),
                evidence={"flip_rate": flip_rate, "swing": swing},
            )


# ----------------------------------------------------------------------
# D3: duality gap not closing
# ----------------------------------------------------------------------
def detect_gap_not_closing(ctx: DoctorContext) -> Iterator[Finding]:
    """The weak-duality sandwich (Formula 7-8) is the stopping
    criterion; a run that burns its whole iteration budget with the
    relative gap stuck far above ``gap_tol`` converged to nothing."""
    phi_lb = ctx.series("phi_lower")
    phi_ub = ctx.series("phi_upper")
    index = ctx.series_index("phi_upper")
    if phi_ub.shape[0] < 6 or np.any(phi_ub <= 0):
        return
    gap = np.maximum(phi_ub - phi_lb, 0.0) / phi_ub
    final = float(gap[-1])
    threshold = 2.0 * ctx.gap_tol
    if final <= threshold:
        return
    half = gap.shape[0] // 2
    early = float(np.median(gap[:half]))
    no_progress = early <= 0 or final >= 0.9 * early
    if ctx.stop_reason == "max_iterations" or \
            (ctx.stop_reason == "" and no_progress):
        severity = "critical" if no_progress else "warning"
        yield Finding(
            rule="D3", name="gap-not-closing", severity=severity,
            summary=(f"relative duality gap ended at {100 * final:.0f}% "
                     f"(tolerance {100 * ctx.gap_tol:.0f}%) after "
                     f"exhausting the iteration budget"),
            iteration_range=(int(index[half]), int(index[-1])),
            suggestions=(
                "a large stable gap usually means the lower bound is "
                "loose, not that the placement is bad — check Phi_upper "
                "is still improving before spending more iterations",
                "raise max_iterations if both bounds were still moving",
                "check D1/D2 findings first: a saturated lambda or a Pi "
                "plateau upstream keeps the gap open",
            ),
            evidence={"final_gap": final, "median_early_gap": early,
                      "gap_tol": float(ctx.gap_tol)},
        )


# ----------------------------------------------------------------------
# D4: CG stall clusters
# ----------------------------------------------------------------------
def detect_cg_stalls(ctx: DoctorContext) -> Iterator[Finding]:
    """Unconverged CG solves (stalls, non-SPD breakdowns, injected
    faults) recorded by :func:`repro.solvers.cg.record_cg_solve`.  A
    single stall is survivable; a cluster means every primal step is
    running on a half-solved system."""
    stalls = ctx.counter("cg_stalls")
    if stalls <= 0:
        return
    ordinals = ctx.series_index("cg_stall_solves")
    total = ctx.counter("cg_solves")
    consecutive = bool(
        ordinals.shape[0] >= 2 and np.any(np.diff(ordinals) == 1))
    severity = "critical" if stalls >= 3 or consecutive else "warning"
    span = (int(ordinals[0]), int(ordinals[-1])) if ordinals.size else None
    yield Finding(
        rule="D4", name="cg-stall-cluster", severity=severity,
        summary=(f"{stalls:.0f} of {total:.0f} CG solves did not converge"
                 + (" (consecutive solves affected)" if consecutive else "")
                 + "; ranges below are solve ordinals, not iterations"),
        iteration_range=span,
        suggestions=(
            "raise cg_max_iter or loosen cg_tol",
            "switch cg_backend to 'scipy' to cross-check the stall",
            "enable resilience (resilient_config()): the supervisor "
            "retries stalled solves with regularization and backend "
            "fallback",
        ),
        evidence={"stalls": float(stalls), "solves": float(total)},
    )


# ----------------------------------------------------------------------
# D5: overflow regressing after projection
# ----------------------------------------------------------------------
def detect_overflow_regression(ctx: DoctorContext) -> Iterator[Finding]:
    """Overflow bounces a few points iteration to iteration (and jumps
    legitimately when the grid refines: a finer grid sees more local
    congestion), so single-step regressions are noise.  The pathology is
    *sustained* worsening: on the final same-grid stretch of the run the
    later half sits clearly above the earlier half — P_C is
    re-congesting bins the run had already cleared."""
    overflow = ctx.series("overflow_percent")
    bins = ctx.series("grid_bins")
    index = ctx.series_index("overflow_percent")
    if overflow.shape[0] < 8 or bins.shape[0] != overflow.shape[0]:
        return
    # Longest suffix at the final grid resolution.
    start = overflow.shape[0] - 1
    while start > 0 and bins[start - 1] == bins[-1]:
        start -= 1
    segment = overflow[start:]
    if segment.shape[0] < 6:
        return
    half = segment.shape[0] // 2
    median_early = float(np.median(segment[:half]))
    median_late = float(np.median(segment[half:]))
    if median_late <= median_early + 2.0 or \
            median_late <= 1.3 * median_early:
        return
    yield Finding(
        rule="D5", name="overflow-regression", severity="warning",
        summary=(f"density overflow is trending up on the final grid: "
                 f"median {median_early:.1f}% over iterations "
                 f"{int(index[start])}-{int(index[start + half - 1])} but "
                 f"{median_late:.1f}% afterwards — the projection is "
                 "re-congesting bins the run had already cleared"),
        iteration_range=(int(index[start + half]), int(index[-1])),
        suggestions=(
            "lower lambda_h_factor: over-strong anchors drag cells back "
            "into cleared bins between projections",
            "check movable macros: shredded macros re-rasterize "
            "differently between iterations and can flip bins",
        ),
        evidence={"median_early": median_early,
                  "median_late": median_late},
    )


# ----------------------------------------------------------------------
# D6: recovery churn
# ----------------------------------------------------------------------
def detect_recovery_churn(ctx: DoctorContext) -> Iterator[Finding]:
    """A handful of recoveries is the resilience runtime doing its job;
    recoveries on a large fraction of iterations mean the run limped
    through on rollbacks and the trajectory can't be trusted."""
    events = ctx.recovery_events
    count = len(events) if events else int(ctx.counter("recovery_events"))
    if count <= 0:
        return
    iterations = max(ctx.iterations, 1)
    threshold = max(4, int(np.ceil(0.25 * iterations)))
    if count < threshold:
        return
    faults = sorted({str(e.get("fault", "?")) for e in events}) if events \
        else []
    detail = f" (faults: {', '.join(faults)})" if faults else ""
    severity = "critical" if count >= iterations else "warning"
    span = None
    if events:
        its = [int(e["iteration"]) for e in events if "iteration" in e]
        if its:
            span = (min(its), max(its))
    yield Finding(
        rule="D6", name="recovery-churn", severity=severity,
        summary=(f"{count} recovery events over {iterations} iterations"
                 f"{detail} — the supervisor spent the run rolling back"),
        iteration_range=span,
        suggestions=(
            "inspect the dominant fault class in the recovery log; "
            "recurring cg_stall points at the solver config, recurring "
            "numerical/invariant faults at the model or netlist",
            "raise max_retries only after fixing the root cause; more "
            "retries on a deterministic fault just burn time",
        ),
        evidence={"events": float(count), "iterations": float(iterations)},
    )


#: The doctor's battery, in reporting order: (id, slug, detector).
DOCTOR_RULES: list[tuple[str, str, Detector]] = [
    ("D1", "lambda-cap-saturation", detect_lambda_cap_saturation),
    ("D2", "pi-stagnation", detect_pi_stagnation),
    ("D3", "gap-not-closing", detect_gap_not_closing),
    ("D4", "cg-stall-cluster", detect_cg_stalls),
    ("D5", "overflow-regression", detect_overflow_regression),
    ("D6", "recovery-churn", detect_recovery_churn),
]


def diagnose(
    registry: MetricsRegistry,
    config: Any = None,
    recovery_events: list[dict[str, Any]] | None = None,
) -> Diagnosis:
    """Run every detector over a run's metrics registry.

    ``config`` (a :class:`~repro.core.config.ComPLxConfig`, or anything
    with the same attribute names) supplies the thresholds the run
    actually used; without it the paper defaults apply.
    ``recovery_events`` takes the supervisor report's event dicts
    (``result.extras["resilience"]["events"]``); when omitted, the
    ``recovery_events`` counter and the JSON-encoded
    ``recovery_events`` meta key (written by the CLI) are consulted.
    """
    if recovery_events is None:
        encoded = registry.meta.get("recovery_events", "")
        if encoded:
            import json

            recovery_events = json.loads(encoded)
    ctx = DoctorContext(
        registry=registry,
        lambda_growth_cap=float(getattr(config, "lambda_growth_cap", 2.0)),
        gap_tol=float(getattr(config, "gap_tol", 0.08)),
        recovery_events=recovery_events or [],
    )
    diagnosis = Diagnosis()
    for rule_id, _slug, detector in DOCTOR_RULES:
        diagnosis.rules_checked.append(rule_id)
        diagnosis.findings.extend(detector(ctx))
    return diagnosis
