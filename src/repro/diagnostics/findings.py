"""Structured doctor output: findings and the diagnosis container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Diagnosis", "Finding", "SEVERITIES"]

#: Recognized severities, mildest first.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Finding:
    """One detected pathology in a run's trajectory.

    ``iteration_range`` is the (first, last) iteration the evidence
    spans, when the detector can localize it (per-solve detectors use
    solve ordinals instead and say so in the summary).
    ``suggestions`` name concrete config knobs or actions to try.
    """

    rule: str                  # detector id, e.g. "D1"
    name: str                  # short slug, e.g. "lambda-cap-saturation"
    severity: str              # "info" | "warning" | "critical"
    summary: str               # one-line human statement
    iteration_range: tuple[int, int] | None = None
    suggestions: tuple[str, ...] = ()
    evidence: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        where = ""
        if self.iteration_range is not None:
            lo, hi = self.iteration_range
            where = f" [iterations {lo}-{hi}]"
        lines = [f"{self.severity.upper()} {self.rule} {self.name}: "
                 f"{self.summary}{where}"]
        for suggestion in self.suggestions:
            lines.append(f"    try: {suggestion}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "summary": self.summary,
        }
        if self.iteration_range is not None:
            out["iteration_range"] = list(self.iteration_range)
        if self.suggestions:
            out["suggestions"] = list(self.suggestions)
        if self.evidence:
            out["evidence"] = dict(self.evidence)
        return out


@dataclass
class Diagnosis:
    """The doctor's verdict over one run."""

    findings: list[Finding] = field(default_factory=list)
    rules_checked: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_severity(self, severity: str) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    def worst_severity(self) -> str | None:
        worst = None
        for finding in self.findings:
            rank = SEVERITIES.index(finding.severity)
            if worst is None or rank > SEVERITIES.index(worst):
                worst = finding.severity
        return worst

    def render(self) -> str:
        if self.ok:
            checked = ", ".join(self.rules_checked)
            return f"doctor: no findings ({len(self.rules_checked)} " \
                   f"detectors checked: {checked})"
        lines = [f"doctor: {len(self.findings)} finding(s)"]
        lines.extend(f.render() for f in self.findings)
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "rules_checked": list(self.rules_checked),
            "findings": [f.to_json() for f in self.findings],
        }
