"""The convergence doctor: rule-based diagnosis of placement runs.

ComPLx's health is its trajectory — lambda growth, Pi decay, the
Phi bound gap closing (paper Formulas 8-12).  The doctor walks the
recorded telemetry series of a run (``result.metrics`` or a saved
metrics JSON) with a fixed battery of detectors and emits structured
:class:`Finding`\\ s: what looks wrong, how severe, over which
iterations, and which knobs to try.

::

    from repro.diagnostics import diagnose

    diagnosis = diagnose(result.metrics, config=config)
    for finding in diagnosis.findings:
        print(finding.render())

Detector reference (see ``docs/observability.md`` for the full rule
catalog): D1 lambda-cap saturation, D2 Pi plateau/oscillation, D3
duality gap not closing, D4 CG stall clusters, D5 overflow regression
after projection, D6 recovery churn.
"""

from .findings import Diagnosis, Finding
from .doctor import DOCTOR_RULES, diagnose

__all__ = [
    "DOCTOR_RULES",
    "Diagnosis",
    "Finding",
    "diagnose",
]
