"""Quadratic interconnect models and sparse system assembly.

Quadratic placers approximate HPWL with Formula (2) of the paper,

    Phi_Q(x, y) = x^T Qx x + fx x + y^T Qy y + fy y,

one independent system per axis.  This module decomposes hypernets into
two-pin edges using one of three net models and assembles the (strictly
convex, SPD) reduced system over movable cells:

* ``b2b``    — Bound2Bound [Spindler et al., Kraftwerk2]: every pin
  connects to the two boundary pins of its net with weight
  ``w_e / ((d-1) |x_p - x_b|)``; the quadratic cost equals the net's
  HPWL at the linearization point.  This is the model SimPL / ComPLx use,
  and it embeds the Sigl-style linearization (division by the last
  iterate's distance).
* ``clique`` — all pin pairs with weight ``w_e / (d-1)``.
* ``star``   — equivalent to a clique scaled by ``1/d`` (the auxiliary
  star node is eliminated analytically).
* ``hybrid`` — clique for small nets, B2B for larger ones.

The assembled system is stored with the convention ``grad = 2 (Q x - b)``
so the unconstrained optimum solves ``Q x = b``.  Fixed-cell terms and pin
offsets fold into ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..netlist import Netlist, Placement

#: Edge lists as produced by the net-model decompositions: pin indices a, b
#: plus the (already distance-linearized) edge weight.
EdgeList = tuple[np.ndarray, np.ndarray, np.ndarray]


@dataclass
class QuadraticSystem:
    """Reduced quadratic system over movable cells, one axis.

    Minimizing ``x^T Q x - 2 b^T x + const`` over the movable slots is
    equivalent to solving ``Q x = b``.  ``slot_of_cell[i]`` maps a cell
    index to its row (``-1`` for fixed cells), ``cell_of_slot`` inverts it.
    """

    matrix: sp.csr_matrix
    rhs: np.ndarray
    slot_of_cell: np.ndarray
    cell_of_slot: np.ndarray

    @property
    def size(self) -> int:
        return int(self.rhs.shape[0])

    def cost(self, x_movable: np.ndarray) -> float:
        """Quadratic objective value (up to the dropped constant)."""
        return float(x_movable @ (self.matrix @ x_movable) - 2.0 * self.rhs @ x_movable)

    def residual_norm(self, x_movable: np.ndarray) -> float:
        return float(np.linalg.norm(self.matrix @ x_movable - self.rhs))

    def add_anchor(self, cell: int, weight: float, target: float) -> None:
        """Add a pseudonet term ``weight * (x_cell - target)^2`` in place.

        This realizes the linearized L1 penalty of Formula (10): the caller
        supplies ``weight = lambda / (|x - x_anchor| + eps)``.
        """
        slot = int(self.slot_of_cell[cell])
        if slot < 0:
            raise ValueError(f"cell {cell} is fixed; anchors apply to movables")
        self.matrix[slot, slot] += weight
        self.rhs[slot] += weight * target

    def add_anchors(self, weights: np.ndarray, targets: np.ndarray) -> None:
        """Vectorized anchors for *all movable slots* at once.

        ``weights``/``targets`` are indexed by slot.  Anchoring every
        movable cell keeps the system strictly positive definite even for
        netlists with few fixed pins.
        """
        if weights.shape != (self.size,) or targets.shape != (self.size,):
            raise ValueError("weights/targets must have one entry per slot")
        if np.any(weights < 0):
            raise ValueError("anchor weights must be non-negative")
        diag = sp.diags(weights, format="csr")
        self.matrix = (self.matrix + diag).tocsr()
        self.rhs = self.rhs + weights * targets


# ---------------------------------------------------------------------------
# net-model edge decompositions (pin-level)
# ---------------------------------------------------------------------------

def clique_pairs(netlist: Netlist) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All pin pairs of every net with >= 2 pins, fully vectorized.

    Returns ``(pin_a, pin_b, net_of_pair)`` ordered by net index
    ascending, and within each net in ``np.triu_indices(d, k=1)`` order —
    exactly the order the historical per-net Python loop produced, so
    edge lists built on top of it are bit-compatible with the old path.
    Pairs are materialized by grouping nets by degree: one local triu
    template per distinct degree, scattered to per-net output offsets.
    """
    degrees = netlist.net_degrees
    valid = degrees >= 2
    pair_counts = np.where(valid, degrees * (degrees - 1) // 2, 0)
    total = int(pair_counts.sum())
    empty = np.zeros(0, dtype=np.int64)
    if total == 0:
        return empty, empty.copy(), empty.copy()
    pair_start = np.zeros(netlist.num_nets + 1, dtype=np.int64)
    np.cumsum(pair_counts, out=pair_start[1:])
    pin_a = np.empty(total, dtype=np.int64)
    pin_b = np.empty(total, dtype=np.int64)
    for d in np.unique(degrees[valid]):
        d = int(d)
        ii, jj = np.triu_indices(d, k=1)
        nets_d = np.flatnonzero(valid & (degrees == d))
        m = d * (d - 1) // 2
        dest = (pair_start[nets_d][:, None]
                + np.arange(m, dtype=np.int64)).ravel()
        base = netlist.net_start[nets_d][:, None]
        pin_a[dest] = (base + ii).ravel()
        pin_b[dest] = (base + jj).ravel()
    net_of_pair = np.repeat(
        np.arange(netlist.num_nets, dtype=np.int64), pair_counts,
    )
    return pin_a, pin_b, net_of_pair


def clique_edges(netlist: Netlist, scale_by_degree: bool = False) -> EdgeList:
    """Clique decomposition: all pin pairs, weight ``w_e/(d-1)``.

    With ``scale_by_degree`` the weights become ``w_e/(d(d-1))`` which is
    the analytic elimination of the star model's auxiliary node.
    """
    pin_a, pin_b, net_of_pair = clique_pairs(netlist)
    if pin_a.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), np.zeros(0, dtype=np.float64)
    degrees = netlist.net_degrees
    # Same two-step division the scalar path performed, so edge weights
    # stay bit-identical to the historical per-net loop.
    w_net = netlist.net_weights / np.maximum(degrees - 1, 1)
    if scale_by_degree:
        w_net = w_net / np.maximum(degrees, 1)
    return pin_a, pin_b, w_net[net_of_pair]


def star_edges(netlist: Netlist) -> EdgeList:
    """Star decomposition with the star node eliminated analytically."""
    return clique_edges(netlist, scale_by_degree=True)


def b2b_edges(
    netlist: Netlist,
    placement: Placement,
    axis: str,
    eps: float,
) -> EdgeList:
    """Bound2Bound decomposition along one axis at the current iterate.

    For each net, pins are sorted by coordinate; the extreme pins are the
    *boundary* pins.  Every pin connects to the boundary pin(s) it is not
    itself, with weight ``2 w_e / ((d-1) (|c_p - c_b| + eps))``, yielding
    ``2d - 3`` edges per net.  At the linearization point the quadratic
    cost of these edges telescopes to the net's HPWL along the axis.
    """
    if axis not in ("x", "y"):
        raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
    if eps <= 0:
        raise ValueError("eps must be positive")
    if axis == "x":
        coords = placement.x[netlist.pin_cell] + netlist.pin_dx
    else:
        coords = placement.y[netlist.pin_cell] + netlist.pin_dy

    degrees = netlist.net_degrees
    net_of_pin = netlist.pin_net_ids()
    # Sort pins of each net by coordinate; CSR order keeps nets contiguous.
    order = np.lexsort((coords, net_of_pin))
    starts = netlist.net_start[:-1]
    ends = netlist.net_start[1:] - 1

    valid = degrees >= 2
    if not valid.any():
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), np.zeros(0, dtype=np.float64)

    min_pin_of_net = order[np.minimum(starts, len(order) - 1)]
    max_pin_of_net = order[np.maximum(ends, 0)]
    min_of_pin = np.repeat(min_pin_of_net, degrees)
    max_of_pin = np.repeat(max_pin_of_net, degrees)
    # Weight 1/(d-1) per unit distance: summing the 2d-3 boundary edges
    # telescopes to exactly (d-1) * span, so the quadratic cost equals
    # the net's HPWL along this axis at the linearization point.
    weight_of_pin = np.repeat(
        np.where(valid, netlist.net_weights / np.maximum(degrees - 1, 1), 0.0),
        degrees,
    )
    pin_ids = np.arange(netlist.num_pins, dtype=np.int64)
    valid_pin = np.repeat(valid, degrees)

    # Edge set 1: every pin except the min connects to the min boundary pin
    # (this includes the max pin, giving the boundary-boundary edge).
    m1 = valid_pin & (pin_ids != min_of_pin)
    a1, b1 = pin_ids[m1], min_of_pin[m1]
    w1 = weight_of_pin[m1] / (np.abs(coords[a1] - coords[b1]) + eps)

    # Edge set 2: every interior pin connects to the max boundary pin.
    m2 = valid_pin & (pin_ids != min_of_pin) & (pin_ids != max_of_pin)
    a2, b2 = pin_ids[m2], max_of_pin[m2]
    w2 = weight_of_pin[m2] / (np.abs(coords[a2] - coords[b2]) + eps)

    return (
        np.concatenate([a1, a2]),
        np.concatenate([b1, b2]),
        np.concatenate([w1, w2]),
    )


# ---------------------------------------------------------------------------
# system assembly
# ---------------------------------------------------------------------------

def assemble_system(
    netlist: Netlist,
    edges: EdgeList,
    axis: str,
    placement: Placement,
) -> QuadraticSystem:
    """Assemble the reduced SPD system from pin-level edges.

    Each edge contributes ``w (p_a - p_b)^2`` with ``p = x_cell + offset``.
    Movable-movable edges populate the matrix; edges to fixed cells fold
    into the diagonal and right-hand side; pin offsets shift the rhs.

    This is the *reference* assembler: simple, slow, and the ground
    truth the planned fast path of
    :class:`repro.models.assembly.AssemblyPlan` is property-tested
    against.  Per-iteration callers should prefer an ``AssemblyPlan``.
    """
    return _reference_assemble(netlist, edges, axis, placement)


def _reference_assemble(
    netlist: Netlist,
    edges: EdgeList,
    axis: str,
    placement: Placement,
) -> QuadraticSystem:
    """The historical scatter-based assembly (kept verbatim for tests)."""
    if axis == "x":
        offsets = netlist.pin_dx
        fixed_pos = placement.x
    elif axis == "y":
        offsets = netlist.pin_dy
        fixed_pos = placement.y
    else:
        raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")

    slot_of_cell = np.full(netlist.num_cells, -1, dtype=np.int64)
    cell_of_slot = np.flatnonzero(netlist.movable)
    slot_of_cell[cell_of_slot] = np.arange(cell_of_slot.shape[0],
                                           dtype=np.int64)
    n = cell_of_slot.shape[0]

    pin_a, pin_b, w = edges
    cell_a = netlist.pin_cell[pin_a]
    cell_b = netlist.pin_cell[pin_b]
    # Drop self-edges (two pins of the same cell contribute a constant).
    keep = cell_a != cell_b
    cell_a, cell_b, w = cell_a[keep], cell_b[keep], w[keep]
    off_a, off_b = offsets[pin_a[keep]], offsets[pin_b[keep]]
    mov_a = netlist.movable[cell_a]
    mov_b = netlist.movable[cell_b]

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    rhs = np.zeros(n, dtype=np.float64)

    # movable-movable: w (xa + da - xb - db)^2
    mm = mov_a & mov_b
    if mm.any():
        sa = slot_of_cell[cell_a[mm]]
        sb = slot_of_cell[cell_b[mm]]
        wm = w[mm]
        delta = off_a[mm] - off_b[mm]
        rows += [sa, sb, sa, sb]
        cols += [sa, sb, sb, sa]
        vals += [wm, wm, -wm, -wm]
        np.add.at(rhs, sa, -wm * delta)  # statcheck: ignore[R9] reference path
        np.add.at(rhs, sb, wm * delta)  # statcheck: ignore[R9] reference path

    # movable-fixed: w (xa + da - c)^2 with c the fixed pin position
    for m_mask, m_cell, m_off, f_cell, f_off in (
        (mov_a & ~mov_b, cell_a, off_a, cell_b, off_b),
        (~mov_a & mov_b, cell_b, off_b, cell_a, off_a),
    ):
        if not m_mask.any():
            continue
        s = slot_of_cell[m_cell[m_mask]]
        wf = w[m_mask]
        c = fixed_pos[f_cell[m_mask]] + f_off[m_mask]
        rows.append(s)
        cols.append(s)
        vals.append(wf)
        np.add.at(rhs, s, wf * (c - m_off[m_mask]))  # statcheck: ignore[R9] reference path

    if rows:
        matrix = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n),
        ).tocsr()
    else:
        matrix = sp.csr_matrix((n, n))
    return QuadraticSystem(matrix, rhs, slot_of_cell, cell_of_slot)


def build_system(
    netlist: Netlist,
    placement: Placement,
    axis: str,
    model: str = "b2b",
    eps: float = 1.0,
    hybrid_threshold: int = 3,
) -> QuadraticSystem:
    """Build the quadratic system for one axis with the chosen net model."""
    if model == "b2b":
        edges = b2b_edges(netlist, placement, axis, eps)
    elif model == "clique":
        edges = clique_edges(netlist)
    elif model == "star":
        edges = star_edges(netlist)
    elif model == "hybrid":
        edges = _hybrid_edges(netlist, placement, axis, eps, hybrid_threshold)
    else:
        raise ValueError(f"unknown net model {model!r}")
    return assemble_system(netlist, edges, axis, placement)


def _hybrid_edges(
    netlist: Netlist,
    placement: Placement,
    axis: str,
    eps: float,
    threshold: int,
) -> EdgeList:
    """Clique for nets up to ``threshold`` pins, B2B above."""
    a_b2b, b_b2b, w_b2b = b2b_edges(netlist, placement, axis, eps)
    a_clq, b_clq, w_clq = clique_edges(netlist)
    net_of_pin = netlist.pin_net_ids()
    degrees = netlist.net_degrees
    small_b2b = degrees[net_of_pin[a_b2b]] <= threshold
    small_clq = degrees[net_of_pin[a_clq]] <= threshold
    return (
        np.concatenate([a_b2b[~small_b2b], a_clq[small_clq]]),
        np.concatenate([b_b2b[~small_b2b], b_clq[small_clq]]),
        np.concatenate([w_b2b[~small_b2b], w_clq[small_clq]]),
    )
