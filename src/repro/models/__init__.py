"""Interconnect models: exact HPWL and its smooth/quadratic approximations."""

from .hpwl import (
    hpwl,
    hpwl_by_axis,
    net_bounding_boxes,
    per_net_hpwl,
    pin_positions,
    weighted_hpwl,
)
from .logsumexp import SmoothWirelengthResult, default_gamma, lse_wirelength
from .quadratic import (
    QuadraticSystem,
    assemble_system,
    b2b_edges,
    build_system,
    clique_edges,
    star_edges,
)
from .regularization import beta_regularized_wirelength, pnorm_wirelength

__all__ = [
    "QuadraticSystem",
    "SmoothWirelengthResult",
    "assemble_system",
    "b2b_edges",
    "beta_regularized_wirelength",
    "build_system",
    "clique_edges",
    "default_gamma",
    "hpwl",
    "hpwl_by_axis",
    "lse_wirelength",
    "net_bounding_boxes",
    "per_net_hpwl",
    "pin_positions",
    "pnorm_wirelength",
    "star_edges",
    "weighted_hpwl",
]
