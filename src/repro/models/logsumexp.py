"""Log-sum-exp smooth approximation of HPWL (paper Section S1).

The classic technique [Ruehli et al. 1977; Naylor patent] replaces the
per-net max/min with

    gamma * log sum_k exp(x_k / gamma)  ->  max_k x_k      (gamma -> 0)

so the smooth wirelength of net ``e`` along x is

    W_e(x) = gamma*log(sum exp(x/gamma)) + gamma*log(sum exp(-x/gamma))

which over-approximates the HPWL span and converges to it as gamma -> 0.
Gradients are softmax weights, making the model compatible with the
nonlinear Conjugate Gradient path of ComPLx.

All computations subtract per-net maxima before exponentiating so the
model is numerically stable for any coordinate scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist import Netlist, Placement
from .hpwl import pin_positions


def _stable_lse(coords: np.ndarray, starts: np.ndarray, degrees: np.ndarray,
                gamma: float) -> tuple[np.ndarray, np.ndarray]:
    """Per-net ``gamma*log(sum(exp(c/gamma)))`` and per-pin softmax weights."""
    hi = np.maximum.reduceat(coords, starts)
    hi_of_pin = np.repeat(hi, degrees)
    expo = np.exp((coords - hi_of_pin) / gamma)
    sums = np.add.reduceat(expo, starts)
    lse = hi + gamma * np.log(sums)
    softmax = expo / np.repeat(sums, degrees)
    return lse, softmax


@dataclass
class SmoothWirelengthResult:
    """Value and per-cell gradient of the smooth wirelength."""

    value: float
    grad_x: np.ndarray
    grad_y: np.ndarray


def lse_wirelength(
    netlist: Netlist,
    placement: Placement,
    gamma: float,
    with_grad: bool = True,
) -> SmoothWirelengthResult:
    """Weighted log-sum-exp wirelength and its gradient w.r.t. cell centers.

    ``gamma`` has length units; smaller values approximate HPWL more
    tightly but sharpen the objective.  Gradients of fixed cells are
    zeroed so optimizers can take steps directly.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    px, py = pin_positions(netlist, placement)
    starts = netlist.net_start[:-1]
    degrees = netlist.net_degrees
    w = netlist.net_weights

    value = 0.0
    grad_x = np.zeros(netlist.num_cells, dtype=np.float64)
    grad_y = np.zeros(netlist.num_cells, dtype=np.float64)
    for coords, grad in ((px, grad_x), (py, grad_y)):
        lse_max, soft_max = _stable_lse(coords, starts, degrees, gamma)
        lse_min, soft_min = _stable_lse(-coords, starts, degrees, gamma)
        value += float((w * (lse_max + lse_min)).sum())
        if with_grad:
            w_of_pin = np.repeat(w, degrees)
            pin_grad = w_of_pin * (soft_max - soft_min)
            # bincount accumulates in pin order like the np.add.at it
            # replaces (bit-identical onto the zero target), much faster.
            grad += np.bincount(netlist.pin_cell, weights=pin_grad,
                                minlength=netlist.num_cells)
    if with_grad:
        grad_x[~netlist.movable] = 0.0
        grad_y[~netlist.movable] = 0.0
    return SmoothWirelengthResult(value, grad_x, grad_y)


def default_gamma(netlist: Netlist, fraction: float = 0.01) -> float:
    """A reasonable smoothing parameter: a small fraction of the core span.

    NTUPlace-style placers anneal gamma downward over iterations; this
    gives the starting value.
    """
    bounds = netlist.core.bounds
    return max(fraction * max(bounds.width, bounds.height), 1e-9)
