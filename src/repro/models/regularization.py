"""Alternative smooth HPWL approximations from paper Section S1.

* **beta-regularization** [Alpert et al. 1998]:
  ``sqrt((x_i - x_j)^2 + beta) -> |x_i - x_j|`` as ``beta -> 0``;
  applied to a two-pin (clique-decomposed) view of each net.
* **p,beta-regularization** [Kennings & Markov 2002]:
  ``(sum_{i,j in e} |x_i - x_j|^p + beta)^(1/p) -> max spread`` as
  ``p -> inf``; a per-net smooth max.

Both return value + gradient in the same shape as
:func:`repro.models.logsumexp.lse_wirelength`, so any of the three can be
plugged into the nonlinear-CG instantiation of ComPLx (the paper's claim
that the framework is interconnect-model agnostic).
"""

from __future__ import annotations

import numpy as np

from ..netlist import Netlist, Placement
from .hpwl import pin_positions
from .logsumexp import SmoothWirelengthResult


def beta_regularized_wirelength(
    netlist: Netlist,
    placement: Placement,
    beta: float,
    with_grad: bool = True,
) -> SmoothWirelengthResult:
    """Sum over clique edges of ``w_e/(d-1) * sqrt(delta^2 + beta)``."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    px, py = pin_positions(netlist, placement)
    grad_x = np.zeros(netlist.num_cells, dtype=np.float64)
    grad_y = np.zeros(netlist.num_cells, dtype=np.float64)
    value = 0.0
    degrees = netlist.net_degrees
    for e in range(netlist.num_nets):
        d = int(degrees[e])
        if d < 2:
            continue
        span = netlist.net_pins(e)
        cells = netlist.pin_cell[span]
        weight = netlist.net_weights[e] / (d - 1)
        for coords, grad in ((px, grad_x), (py, grad_y)):
            c = coords[span]
            delta = c[:, None] - c[None, :]
            root = np.sqrt(delta**2 + beta)
            ii, jj = np.triu_indices(d, k=1)
            value += weight * float(root[ii, jj].sum())
            if with_grad:
                # d/dc_i of sum sqrt((c_i-c_j)^2+beta) = sum delta/root
                g = weight * (delta / root).sum(axis=1)
                np.add.at(grad, cells, g)
    if with_grad:
        grad_x[~netlist.movable] = 0.0
        grad_y[~netlist.movable] = 0.0
    return SmoothWirelengthResult(value, grad_x, grad_y)


def pnorm_wirelength(
    netlist: Netlist,
    placement: Placement,
    p: float = 8.0,
    beta: float = 1e-6,
    with_grad: bool = True,
) -> SmoothWirelengthResult:
    """Per-net smooth max: ``(sum |c_i - c_j|^p + beta)^(1/p)``.

    Large ``p`` approaches the true HPWL span from above.  Computed per
    net over clique pairs; numerically normalized by the largest pairwise
    distance to avoid overflow for large ``p``.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    px, py = pin_positions(netlist, placement)
    grad_x = np.zeros(netlist.num_cells, dtype=np.float64)
    grad_y = np.zeros(netlist.num_cells, dtype=np.float64)
    value = 0.0
    degrees = netlist.net_degrees
    for e in range(netlist.num_nets):
        d = int(degrees[e])
        if d < 2:
            continue
        span = netlist.net_pins(e)
        cells = netlist.pin_cell[span]
        weight = netlist.net_weights[e]
        for coords, grad in ((px, grad_x), (py, grad_y)):
            c = coords[span]
            delta = np.abs(c[:, None] - c[None, :])
            scale = float(delta.max())
            if scale <= 0.0:
                value += weight * beta ** (1.0 / p)
                continue
            normed = delta / scale
            total = float((np.triu(normed**p, k=1)).sum()) + beta / scale**p
            net_val = scale * total ** (1.0 / p)
            value += weight * net_val
            if with_grad:
                # d(net_val)/dc_i via chain rule on sum |c_i - c_j|^p
                signed = c[:, None] - c[None, :]
                contrib = (
                    np.sign(signed) * normed ** (p - 1.0)
                )
                g = weight * total ** (1.0 / p - 1.0) * contrib.sum(axis=1)
                np.add.at(grad, cells, g)
    if with_grad:
        grad_x[~netlist.movable] = 0.0
        grad_y[~netlist.movable] = 0.0
    return SmoothWirelengthResult(value, grad_x, grad_y)
