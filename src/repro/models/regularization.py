"""Alternative smooth HPWL approximations from paper Section S1.

* **beta-regularization** [Alpert et al. 1998]:
  ``sqrt((x_i - x_j)^2 + beta) -> |x_i - x_j|`` as ``beta -> 0``;
  applied to a two-pin (clique-decomposed) view of each net.
* **p,beta-regularization** [Kennings & Markov 2002]:
  ``(sum_{i,j in e} |x_i - x_j|^p + beta)^(1/p) -> max spread`` as
  ``p -> inf``; a per-net smooth max.

Both return value + gradient in the same shape as
:func:`repro.models.logsumexp.lse_wirelength`, so any of the three can be
plugged into the nonlinear-CG instantiation of ComPLx (the paper's claim
that the framework is interconnect-model agnostic).
"""

from __future__ import annotations

import numpy as np

from ..netlist import Netlist, Placement
from .hpwl import pin_positions
from .logsumexp import SmoothWirelengthResult
from .quadratic import clique_pairs


def _pair_scatter(
    netlist: Netlist,
    pin_a: np.ndarray,
    pin_b: np.ndarray,
    term: np.ndarray,
) -> np.ndarray:
    """Scatter antisymmetric pair terms onto cells: ``+term`` to the
    cell of ``pin_a``, ``-term`` to the cell of ``pin_b``."""
    return np.bincount(
        np.concatenate([netlist.pin_cell[pin_a], netlist.pin_cell[pin_b]]),
        weights=np.concatenate([term, -term]),
        minlength=netlist.num_cells,
    )


def beta_regularized_wirelength(
    netlist: Netlist,
    placement: Placement,
    beta: float,
    with_grad: bool = True,
) -> SmoothWirelengthResult:
    """Sum over clique edges of ``w_e/(d-1) * sqrt(delta^2 + beta)``.

    Vectorized over all clique pairs at once (the per-net O(d^2)
    matrices of the original formulation become flat pair arrays); each
    pair ``(i, j)`` contributes ``+w delta/root`` to cell i's gradient
    and the negation to cell j's, which is the pairwise split of the
    historical per-net row sums.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    px, py = pin_positions(netlist, placement)
    grad_x = np.zeros(netlist.num_cells, dtype=np.float64)
    grad_y = np.zeros(netlist.num_cells, dtype=np.float64)
    value = 0.0
    pin_a, pin_b, net_of_pair = clique_pairs(netlist)
    if pin_a.size == 0:
        return SmoothWirelengthResult(value, grad_x, grad_y)
    degrees = netlist.net_degrees
    w_pair = (netlist.net_weights
              / np.maximum(degrees - 1, 1))[net_of_pair]
    for coords, grad in ((px, grad_x), (py, grad_y)):
        delta = coords[pin_a] - coords[pin_b]
        root = np.sqrt(delta**2 + beta)
        value += float((w_pair * root).sum())
        if with_grad:
            grad += _pair_scatter(netlist, pin_a, pin_b,
                                  w_pair * (delta / root))
    if with_grad:
        grad_x[~netlist.movable] = 0.0
        grad_y[~netlist.movable] = 0.0
    return SmoothWirelengthResult(value, grad_x, grad_y)


def pnorm_wirelength(
    netlist: Netlist,
    placement: Placement,
    p: float = 8.0,
    beta: float = 1e-6,
    with_grad: bool = True,
) -> SmoothWirelengthResult:
    """Per-net smooth max: ``(sum |c_i - c_j|^p + beta)^(1/p)``.

    Large ``p`` approaches the true HPWL span from above.  Computed over
    clique pairs grouped per net (contiguous in :func:`clique_pairs`
    order, so per-net maxima/sums are ``reduceat`` segment reductions);
    normalized by the largest pairwise distance per net to avoid
    overflow for large ``p``.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    px, py = pin_positions(netlist, placement)
    grad_x = np.zeros(netlist.num_cells, dtype=np.float64)
    grad_y = np.zeros(netlist.num_cells, dtype=np.float64)
    value = 0.0
    pin_a, pin_b, net_of_pair = clique_pairs(netlist)
    if pin_a.size == 0:
        return SmoothWirelengthResult(value, grad_x, grad_y)
    degrees = netlist.net_degrees
    vnets = np.flatnonzero(degrees >= 2)
    d_v = degrees[vnets]
    group_start = np.zeros(vnets.size, dtype=np.int64)
    np.cumsum(d_v[:-1] * (d_v[:-1] - 1) // 2, out=group_start[1:])
    # Position of each pair within the valid-net grouping.
    seg = np.repeat(np.arange(vnets.size, dtype=np.int64),
                    d_v * (d_v - 1) // 2)
    w_net = netlist.net_weights[vnets]
    for coords, grad in ((px, grad_x), (py, grad_y)):
        delta = coords[pin_a] - coords[pin_b]
        dabs = np.abs(delta)
        scale = np.maximum.reduceat(dabs, group_start)
        degenerate = scale <= 0.0
        value += float((w_net[degenerate] * beta ** (1.0 / p)).sum())
        scale_safe = np.where(degenerate, 1.0, scale)
        normed = dabs / scale_safe[seg]
        total = (np.add.reduceat(normed**p, group_start)
                 + beta / scale_safe**p)
        net_val = scale * total ** (1.0 / p)
        ok = ~degenerate
        value += float((w_net[ok] * net_val[ok]).sum())
        if with_grad:
            coeff = np.where(ok, w_net * total ** (1.0 / p - 1.0), 0.0)
            term = coeff[seg] * np.sign(delta) * normed ** (p - 1.0)
            grad += _pair_scatter(netlist, pin_a, pin_b, term)
    if with_grad:
        grad_x[~netlist.movable] = 0.0
        grad_y[~netlist.movable] = 0.0
    return SmoothWirelengthResult(value, grad_x, grad_y)
