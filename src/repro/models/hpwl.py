"""Half-perimeter wirelength (HPWL) metrics.

Implements Formula (1) of the paper: the weighted HPWL of a netlist is

    wHPWL(x, y) = sum_e w_e * [max_i x_i - min_i x_i] + (same in y)

where the max/min range over pin coordinates (cell center + pin offset).
Everything is vectorized with ``np.ufunc.reduceat`` over the CSR pin
layout, so evaluating HPWL is O(#pins).
"""

from __future__ import annotations

import numpy as np

from ..netlist import Netlist, Placement


def pin_positions(netlist: Netlist, placement: Placement) -> tuple[np.ndarray, np.ndarray]:
    """Absolute pin coordinates for every pin (cell center + offset)."""
    px = placement.x[netlist.pin_cell] + netlist.pin_dx
    py = placement.y[netlist.pin_cell] + netlist.pin_dy
    return px, py


def _net_spans(netlist: Netlist, coords: np.ndarray) -> np.ndarray:
    """Per-net coordinate span ``max - min`` along one axis."""
    if netlist.num_nets == 0:
        return np.zeros(0, dtype=np.float64)
    starts = netlist.net_start[:-1]
    hi = np.maximum.reduceat(coords, starts)
    lo = np.minimum.reduceat(coords, starts)
    spans = hi - lo
    # reduceat misbehaves on empty segments; zero-degree nets have no span.
    spans[netlist.net_degrees == 0] = 0.0
    return spans


def per_net_hpwl(netlist: Netlist, placement: Placement) -> np.ndarray:
    """Unweighted HPWL of each net."""
    px, py = pin_positions(netlist, placement)
    return _net_spans(netlist, px) + _net_spans(netlist, py)


def hpwl(netlist: Netlist, placement: Placement) -> float:
    """Total unweighted HPWL."""
    return float(per_net_hpwl(netlist, placement).sum())


def weighted_hpwl(netlist: Netlist, placement: Placement) -> float:
    """Total HPWL weighted by ``netlist.net_weights`` (paper Formula 1)."""
    return float((per_net_hpwl(netlist, placement) * netlist.net_weights).sum())


def hpwl_by_axis(netlist: Netlist, placement: Placement) -> tuple[float, float]:
    """(x component, y component) of the unweighted HPWL."""
    px, py = pin_positions(netlist, placement)
    return (
        float(_net_spans(netlist, px).sum()),
        float(_net_spans(netlist, py).sum()),
    )


def net_bounding_boxes(
    netlist: Netlist, placement: Placement
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-net pin bounding boxes ``(xlo, xhi, ylo, yhi)``."""
    px, py = pin_positions(netlist, placement)
    starts = netlist.net_start[:-1]
    return (
        np.minimum.reduceat(px, starts),
        np.maximum.reduceat(px, starts),
        np.minimum.reduceat(py, starts),
        np.maximum.reduceat(py, starts),
    )
