"""Precomputed assembly plans: the fast path for per-iteration systems.

ComPLx rebuilds one quadratic system per axis on *every* global placement
iteration, and the paper's headline speed claim rests on that rebuild
being cheap.  The reference path (:func:`repro.models.quadratic.assemble_system`)
recomputes everything from scratch: slot maps, pin→net ids, degree-expanded
weight arrays, ``np.add.at`` scatters and a full COO→CSR conversion.

An :class:`AssemblyPlan` is built **once** per (netlist, net model) and
caches everything that is static across iterations:

* the movable-slot maps ``slot_of_cell`` / ``cell_of_slot``,
* the memoized pin→net map and per-net validity/degree-expanded weights,
* the fully static clique/star edge lists (and, for ``hybrid``, the
  small-net clique slice plus the per-pin large-net mask),
* per-axis frozen CSR systems for the static-topology models, where an
  iteration only has to copy ``.data``/``rhs`` instead of re-running the
  COO→CSR conversion (the ``csr_refresh`` telemetry span),
* preallocated coordinate buffers for the B2B linearization.

so that :meth:`AssemblyPlan.build_system` per iteration only recomputes
the B2B boundary-pin selection and edge weights.  Scatters go through
``np.bincount`` (a single pass in element order — bit-identical to the
sequential ``np.add.at`` it replaces, and an order of magnitude faster).

Every produced system is **bit-identical** to the reference assembler's:
the property tests in ``tests/test_assembly.py`` assert
``(A - A_ref).nnz == 0`` and exact rhs equality for all four net models
on randomized netlists, and a full placer run through the plan is
byte-identical to one through the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .. import telemetry
from ..netlist import Netlist, Placement
from .quadratic import (
    EdgeList,
    QuadraticSystem,
    _reference_assemble,
    clique_edges,
)

__all__ = ["AssemblyPlan", "StaticAxisCache"]

#: Net models an AssemblyPlan accelerates (``lse`` has no linear system).
PLANNABLE_MODELS = ("b2b", "clique", "star", "hybrid")


@dataclass
class StaticAxisCache:
    """Frozen CSR system of a static-topology model along one axis.

    ``indices``/``indptr`` (the sparsity pattern) are shared across
    iterations; ``data``/``rhs`` are copied per build because anchors
    and regularization mutate them.  ``fixed_coords`` snapshots the
    fixed-cell coordinates the system was folded against, so a changed
    fixed placement invalidates the cache instead of going stale.
    """

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    rhs: np.ndarray
    fixed_coords: np.ndarray


class AssemblyPlan:
    """Cached once-per-netlist state for fast per-iteration assembly.

    Parameters mirror :func:`repro.models.quadratic.build_system`; the
    plan produces bit-identical systems through
    :meth:`build_system`.  The returned systems share the plan's slot
    maps (callers never mutate them) while matrix data and rhs are fresh
    per call, so anchor/regularization mutation stays iteration-local.
    """

    def __init__(
        self,
        netlist: Netlist,
        model: str = "b2b",
        eps: float = 1.0,
        hybrid_threshold: int = 3,
    ) -> None:
        if model not in PLANNABLE_MODELS:
            raise ValueError(
                f"unknown or unplannable net model {model!r}; "
                f"expected one of {PLANNABLE_MODELS}"
            )
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.netlist = netlist
        self.model = model
        self.eps = eps
        self.hybrid_threshold = int(hybrid_threshold)
        with telemetry.span(
            "assembly_plan", model=model,
            nets=netlist.num_nets, pins=netlist.num_pins,
        ):
            self._build_static_state()

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------
    def _build_static_state(self) -> None:
        netlist = self.netlist
        self.slot_of_cell = np.full(netlist.num_cells, -1, dtype=np.int64)
        self.cell_of_slot = np.flatnonzero(netlist.movable)
        self.slot_of_cell[self.cell_of_slot] = np.arange(
            self.cell_of_slot.shape[0], dtype=np.int64,
        )
        self.n = int(self.cell_of_slot.shape[0])

        self._pin_cell = netlist.pin_cell
        self._pin_dx = netlist.pin_dx
        self._pin_dy = netlist.pin_dy
        self._movable = netlist.movable
        self._fixed_cells = np.flatnonzero(~netlist.movable)
        self._net_of_pin = netlist.pin_net_ids()
        self._pin_ids = np.arange(netlist.num_pins, dtype=np.int64)
        # Boundary-pin gather positions of every net in the lexsorted pin
        # order (clipped exactly like the reference b2b decomposition).
        num_pins = netlist.num_pins
        starts = netlist.net_start[:-1]
        ends = netlist.net_start[1:] - 1
        self._min_sel = np.minimum(starts, max(num_pins - 1, 0))
        self._max_sel = np.maximum(ends, 0)
        self._coords_buf = np.empty(num_pins, dtype=np.float64)

        self._axis_cache: dict[str, StaticAxisCache] = {}
        self._rebuild_weight_state()

    def _rebuild_weight_state(self) -> None:
        """Everything derived from net weights/degrees (re-entrant: runs
        again if the caller reweights nets between iterations)."""
        netlist = self.netlist
        degrees = netlist.net_degrees
        self._degrees = degrees
        valid = degrees >= 2
        self._valid_any = bool(valid.any())
        self._valid_pin = np.repeat(valid, degrees)
        # Same expression as the reference b2b decomposition, cached.
        self._weight_of_pin = np.repeat(
            np.where(valid, netlist.net_weights / np.maximum(degrees - 1, 1),
                     0.0),
            degrees,
        )
        if self.model == "hybrid":
            large = degrees > self.hybrid_threshold
            self._large_pin = self._valid_pin & np.repeat(large, degrees)
            a, b, w = clique_edges(netlist)
            small = degrees[self._net_of_pin[a]] <= self.hybrid_threshold
            self._clique_small: EdgeList = (a[small], b[small], w[small])
        elif self.model in ("clique", "star"):
            self._static_edges = clique_edges(
                netlist, scale_by_degree=(self.model == "star"),
            )
        self._net_weights_snapshot = netlist.net_weights.copy()
        self._axis_cache.clear()

    def _check_current(self) -> None:
        """Invalidate weight-derived caches if nets were reweighted
        (timing/power-driven flows mutate ``net_weights`` in place)."""
        if not np.array_equal(self._net_weights_snapshot,
                              self.netlist.net_weights):
            self._rebuild_weight_state()

    # ------------------------------------------------------------------
    # per-iteration entry point
    # ------------------------------------------------------------------
    def build_system(self, placement: Placement, axis: str) -> QuadraticSystem:
        """Fast equivalent of :func:`repro.models.quadratic.build_system`."""
        if axis not in ("x", "y"):
            raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
        self._check_current()
        if self.model in ("clique", "star"):
            return self._build_static(placement, axis)
        edges = self._b2b_edges_fast(
            placement, axis, large_only=(self.model == "hybrid"),
        )
        if self.model == "hybrid":
            a, b, w = edges
            ca, cb, cw = self._clique_small
            edges = (
                np.concatenate([a, ca]),
                np.concatenate([b, cb]),
                np.concatenate([w, cw]),
            )
        return self._assemble_fast(edges, axis, placement)

    def reference_system(self, placement: Placement, axis: str) -> QuadraticSystem:
        """The unplanned reference path for the same model (test hook)."""
        from .quadratic import build_system

        return build_system(
            self.netlist, placement, axis, model=self.model, eps=self.eps,
            hybrid_threshold=self.hybrid_threshold,
        )

    # ------------------------------------------------------------------
    # B2B decomposition on cached state
    # ------------------------------------------------------------------
    def _b2b_edges_fast(
        self, placement: Placement, axis: str, large_only: bool,
    ) -> EdgeList:
        if axis == "x":
            np.take(placement.x, self._pin_cell, out=self._coords_buf)
            coords = self._coords_buf
            coords += self._pin_dx
        else:
            np.take(placement.y, self._pin_cell, out=self._coords_buf)
            coords = self._coords_buf
            coords += self._pin_dy
        if not self._valid_any:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), np.zeros(0, dtype=np.float64)

        order = np.lexsort((coords, self._net_of_pin))
        min_of_pin = order[self._min_sel][self._net_of_pin]
        max_of_pin = order[self._max_sel][self._net_of_pin]
        base = self._large_pin if large_only else self._valid_pin

        # Edge set 1: every pin except the min connects to the min
        # boundary pin; edge set 2: interior pins to the max boundary.
        m1 = base & (self._pin_ids != min_of_pin)
        m2 = m1 & (self._pin_ids != max_of_pin)
        a1, b1 = self._pin_ids[m1], min_of_pin[m1]
        w1 = self._weight_of_pin[m1] / (np.abs(coords[a1] - coords[b1])
                                        + self.eps)
        a2, b2 = self._pin_ids[m2], max_of_pin[m2]
        w2 = self._weight_of_pin[m2] / (np.abs(coords[a2] - coords[b2])
                                        + self.eps)
        return (
            np.concatenate([a1, a2]),
            np.concatenate([b1, b2]),
            np.concatenate([w1, w2]),
        )

    # ------------------------------------------------------------------
    # assembly on cached state
    # ------------------------------------------------------------------
    def _assemble_fast(
        self, edges: EdgeList, axis: str, placement: Placement,
    ) -> QuadraticSystem:
        offsets = self._pin_dx if axis == "x" else self._pin_dy
        fixed_pos = placement.x if axis == "x" else placement.y
        n = self.n

        pin_a, pin_b, w = edges
        cell_a = self._pin_cell[pin_a]
        cell_b = self._pin_cell[pin_b]
        keep = cell_a != cell_b
        cell_a, cell_b, w = cell_a[keep], cell_b[keep], w[keep]
        off_a, off_b = offsets[pin_a[keep]], offsets[pin_b[keep]]
        mov_a = self._movable[cell_a]
        mov_b = self._movable[cell_b]

        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        rhs_idx: list[np.ndarray] = []
        rhs_val: list[np.ndarray] = []

        mm = mov_a & mov_b
        if mm.any():
            sa = self.slot_of_cell[cell_a[mm]]
            sb = self.slot_of_cell[cell_b[mm]]
            wm = w[mm]
            delta = off_a[mm] - off_b[mm]
            rows += [sa, sb, sa, sb]
            cols += [sa, sb, sb, sa]
            vals += [wm, wm, -wm, -wm]
            rhs_idx += [sa, sb]
            rhs_val += [-wm * delta, wm * delta]

        for m_mask, m_cell, m_off, f_cell, f_off in (
            (mov_a & ~mov_b, cell_a, off_a, cell_b, off_b),
            (~mov_a & mov_b, cell_b, off_b, cell_a, off_a),
        ):
            if not m_mask.any():
                continue
            s = self.slot_of_cell[m_cell[m_mask]]
            wf = w[m_mask]
            c = fixed_pos[f_cell[m_mask]] + f_off[m_mask]
            rows.append(s)
            cols.append(s)
            vals.append(wf)
            rhs_idx.append(s)
            rhs_val.append(wf * (c - m_off[m_mask]))

        # One concatenated bincount replays the reference's sequential
        # np.add.at scatters in exactly the same element order, so the
        # rhs is bit-identical while running as a single C pass.
        if rhs_idx:
            rhs = np.bincount(
                np.concatenate(rhs_idx),
                weights=np.concatenate(rhs_val),
                minlength=n,
            )
        else:
            rhs = np.zeros(n, dtype=np.float64)

        if rows:
            matrix = sp.coo_matrix(
                (np.concatenate(vals),
                 (np.concatenate(rows), np.concatenate(cols))),
                shape=(n, n),
            ).tocsr()
        else:
            matrix = sp.csr_matrix((n, n))
        return QuadraticSystem(matrix, rhs, self.slot_of_cell,
                               self.cell_of_slot)

    # ------------------------------------------------------------------
    # static-topology fast path (clique / star)
    # ------------------------------------------------------------------
    def _build_static(self, placement: Placement, axis: str) -> QuadraticSystem:
        fixed_pos = placement.x if axis == "x" else placement.y
        fixed_coords = fixed_pos[self._fixed_cells]
        cache = self._axis_cache.get(axis)
        if cache is not None and not np.array_equal(cache.fixed_coords,
                                                    fixed_coords):
            cache = None  # fixed cells moved: the folded rhs is stale
        rebuilt = cache is None
        if rebuilt:
            ref = _reference_assemble(
                self.netlist, self._static_edges, axis, placement,
            )
            m = ref.matrix
            cache = StaticAxisCache(
                data=m.data, indices=m.indices, indptr=m.indptr,
                rhs=ref.rhs, fixed_coords=fixed_coords.copy(),
            )
            self._axis_cache[axis] = cache
        with telemetry.span("csr_refresh", axis=axis, rebuilt=rebuilt):
            matrix = sp.csr_matrix(
                (cache.data.copy(), cache.indices, cache.indptr),
                shape=(self.n, self.n), copy=False,
            )
            rhs = cache.rhs.copy()
        return QuadraticSystem(matrix, rhs, self.slot_of_cell,
                               self.cell_of_slot)
