"""``python -m repro.serve`` — run the placement service (or its smoke).

Examples::

    python -m repro.serve --port 8760 --workers 4
    python -m repro.serve --smoke --registry-root serve-smoke-runs
"""

from __future__ import annotations

import argparse
import logging
import sys

from .api import serve_forever
from .config import ServeConfig, default_start_method


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="placement-as-a-service: crash-isolated job runtime",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8760,
                        help="listen port (0 picks an ephemeral port)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent worker processes")
    parser.add_argument("--queue-capacity", type=int, default=16,
                        help="bounded queue size (full -> HTTP 429)")
    parser.add_argument("--registry-root", default="serve-runs",
                        help="run-registry root (tenant namespaces below)")
    parser.add_argument("--aux-root", default=None,
                        help="allow Bookshelf aux workloads under this dir")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="crash retries per job before it fails")
    parser.add_argument("--default-deadline", type=float, default=120.0,
                        help="per-job deadline seconds when unspecified")
    parser.add_argument("--start-method", default=None,
                        choices=("fork", "spawn", "forkserver"),
                        help="multiprocessing start method for workers")
    parser.add_argument("--tenant-rate", type=float, default=5.0,
                        help="per-tenant submissions per second")
    parser.add_argument("--tenant-burst", type=int, default=10,
                        help="per-tenant submission burst")
    parser.add_argument("--trace", action="store_true",
                        help="stream worker telemetry frames and merge a "
                             "Chrome trace per job")
    parser.add_argument("--smoke", action="store_true",
                        help="run the end-to-end self-test and exit")
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    if args.smoke:
        from .smoke import SmokeFailure, run_smoke

        try:
            return run_smoke(registry_root=args.registry_root,
                             trace=args.trace)
        except SmokeFailure as exc:
            print(f"serve smoke FAILED: {exc}", file=sys.stderr)
            return 1
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        registry_root=args.registry_root,
        max_retries=args.max_retries,
        default_deadline_seconds=args.default_deadline,
        start_method=args.start_method or default_start_method(),
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        trace=args.trace,
    )
    print(f"serving placement jobs on http://{config.host}:{config.port} "
          f"({config.workers} workers, queue {config.queue_capacity}, "
          f"registry {config.registry_root})")
    serve_forever(config, aux_root=args.aux_root)
    return 0


if __name__ == "__main__":
    sys.exit(main())
