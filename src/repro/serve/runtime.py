"""The job runtime: admission, dispatch, isolation, retries, archiving.

One :class:`JobRuntime` owns the bounded queue, the per-tenant token
buckets, and up to ``workers`` concurrently running job attempts.  Every
attempt executes in its *own* child process (:mod:`repro.serve.worker`),
so nothing a job does — OOM kill, an injected
:class:`~repro.faults.SimulatedCrash`, a SIGKILL from the outside — can
take the service down; the monitor thread classifies the abnormal exit
as a crash and re-dispatches with exponential backoff until the retry
budget is spent, at which point the job is marked failed with its
recovery log attached.

Threading model (everything shared is lock-guarded or internally
synchronized):

* HTTP handler threads call ``submit``/``cancel``/``job``/``snapshot``,
* one dispatcher thread moves jobs from the queue onto free worker
  slots, choosing the degradation tier from queue pressure,
* one monitor thread per running job drives its attempts and archives
  the outcome into the tenant's run-registry namespace.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import os
import threading
import time
from typing import Any

from .. import faults
from ..runs import RunRegistry
from ..telemetry import (
    FleetAggregator,
    MetricsRegistry,
    TraceContext,
    TraceMerger,
)
from .config import DegradationTier, ServeConfig
from .jobs import JobRecord, JobSpec, JobState, JobValidationError
from .queue import BACKGROUND_PRIORITY, BoundedPriorityQueue, QueueFull
from .tenants import RateLimited, TenantTable
from .worker import worker_entry

__all__ = ["JobRuntime", "ServiceStats", "ServiceUnavailable"]

logger = logging.getLogger(__name__)


class ServiceUnavailable(Exception):
    """The runtime is draining and no longer accepts work (HTTP 503)."""


class ServiceStats:
    """Service-level counters and aggregates (lock-guarded).

    ``to_registry`` snapshots everything into a fresh
    :class:`~repro.telemetry.MetricsRegistry`, which is what the
    ``/metricz`` endpoint serializes — the service's own health flows
    through the same telemetry format as placement runs.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._wait_total = 0.0
        self._wait_max = 0.0
        self._wait_count = 0
        self._running = 0

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def note_wait(self, seconds: float) -> None:
        with self._lock:
            self._wait_total += seconds
            self._wait_count += 1
            if seconds > self._wait_max:
                self._wait_max = seconds

    def running_delta(self, delta: int) -> None:
        with self._lock:
            self._running += delta

    @property
    def running(self) -> int:
        with self._lock:
            return self._running

    def value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            doc: dict[str, Any] = dict(sorted(self._counters.items()))
            doc["running"] = self._running
            if self._wait_count:
                doc["queue_wait_avg_seconds"] = \
                    self._wait_total / self._wait_count
                doc["queue_wait_max_seconds"] = self._wait_max
            return doc

    def to_registry(self, queue_depth: int) -> MetricsRegistry:
        snap = self.snapshot()
        registry = MetricsRegistry()
        registry.meta["component"] = "repro.serve"
        for name, value in snap.items():
            if name.endswith("_seconds"):
                registry.gauge(name).set(float(value))
            elif name == "running":
                registry.gauge("jobs_running").set(float(value))
            else:
                registry.counter(name).inc(float(value))
        registry.gauge("queue_depth").set(float(queue_depth))
        return registry


class JobRuntime:
    """The placement service minus HTTP (see :mod:`repro.serve.api`)."""

    def __init__(self, config: ServeConfig | None = None,
                 aux_root: str | None = None) -> None:
        self.config = config or ServeConfig()
        self.aux_root = aux_root
        self.queue = BoundedPriorityQueue(self.config.queue_capacity)
        self.tenants = TenantTable(self.config.tenant_rate,
                                   self.config.tenant_burst)
        self.stats = ServiceStats()
        #: Fleet-wide rollup of worker telemetry; always on (service
        #: times feed it even without tracing, frames only with it).
        self.fleet = FleetAggregator()
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}
        self._next_job = 0
        self._draining = False
        self._stopped = threading.Event()
        self._slots = threading.Semaphore(self.config.workers)
        #: Background-band jobs (priority >= BACKGROUND_PRIORITY) may
        #: occupy at most this many slots, so at least one worker stays
        #: free for interactive traffic whenever workers > 1.
        self._background_limit = max(self.config.workers - 1, 1)
        self._background_running = 0
        self._monitors: list[threading.Thread] = []
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True)

    def start(self) -> "JobRuntime":
        self._dispatcher.start()
        logger.info("job runtime up: %d workers (%s), queue capacity %d",
                    self.config.workers, self.config.start_method,
                    self.config.queue_capacity)
        return self

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, payload: dict[str, Any],
               tenant_hint: str | None = None) -> JobRecord:
        """Validate and enqueue one submission.

        Raises :class:`JobValidationError` (400),
        :class:`~repro.serve.tenants.RateLimited` (429),
        :class:`~repro.serve.queue.QueueFull` (429) or
        :class:`ServiceUnavailable` (503, draining).
        """
        self.stats.inc("submitted")
        with self._lock:
            if self._draining:
                self.stats.inc("rejected_draining")
                raise ServiceUnavailable("service is draining")
            self._next_job += 1
            job_id = f"j-{self._next_job:06d}"
        try:
            spec = JobSpec.from_payload(
                payload, job_id,
                default_tenant=tenant_hint or "default")
        except JobValidationError:
            self.stats.inc("rejected_invalid")
            raise
        if spec.workload.get("kind") == "aux" and self.aux_root is None:
            self.stats.inc("rejected_invalid")
            raise JobValidationError(
                "aux workloads are disabled on this server")
        deadline = spec.deadline_seconds
        if deadline is None:
            deadline = self.config.default_deadline_seconds
        if deadline is not None \
                and deadline > self.config.max_deadline_seconds:
            self.stats.inc("rejected_invalid")
            raise JobValidationError(
                f"deadline_seconds exceeds the server cap "
                f"({self.config.max_deadline_seconds:g}s)")
        spec = dataclasses.replace(spec, deadline_seconds=deadline)
        try:
            self.tenants.admit(spec.tenant)
        except RateLimited:
            self.stats.inc("rejected_rate_limited")
            raise
        record = JobRecord(spec=spec, keep_events=self.config.keep_events,
                           enqueued_at=time.monotonic())
        with self._lock:
            self._jobs[job_id] = record
        try:
            depth = self.queue.put(job_id, spec.priority, record,
                                   workers=self.config.workers)
        except QueueFull:
            with self._lock:
                del self._jobs[job_id]
            self.stats.inc("rejected_queue_full")
            raise
        except RuntimeError:
            with self._lock:
                del self._jobs[job_id]
            self.stats.inc("rejected_draining")
            raise ServiceUnavailable("service is draining") from None
        self.stats.inc("accepted")
        record.add_event({"stage": "queued", "depth": depth})
        logger.info("accepted %s (%s/%s) at depth %d",
                    job_id, spec.tenant, spec.name, depth)
        return record

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, tenant: str | None = None) -> list[JobRecord]:
        with self._lock:
            records = list(self._jobs.values())
        if tenant is not None:
            records = [r for r in records if r.spec.tenant == tenant]
        return sorted(records, key=lambda r: r.spec.job_id)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def ready(self) -> bool:
        """Readiness: accepting submissions with queue headroom."""
        return not self.draining \
            and self.queue.depth() < self.config.queue_capacity

    def registry_for(self, tenant: str) -> RunRegistry:
        return RunRegistry(os.path.join(self.config.registry_root, tenant))

    def metrics_registry(self) -> MetricsRegistry:
        """Service counters merged with the fleet telemetry rollup."""
        registry = self.stats.to_registry(self.queue.depth())
        registry.merge(self.fleet.to_registry())
        registry.meta["component"] = "repro.serve"
        return registry

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; True if anything changed."""
        record = self.job(job_id)
        if record is None or record.done:
            return False
        record.request_cancel()
        if self.queue.remove(job_id):
            record.transition(JobState.CANCELLED, now=time.monotonic())
            record.add_event({"stage": "cancelled", "where": "queue"})
            self.stats.inc("cancelled")
            logger.info("cancelled %s while queued", job_id)
        # A running job's monitor notices the flag within its poll
        # interval and terminates the worker process.
        return True

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop the service.

        ``drain=True`` finishes every accepted job (queued and running)
        before returning, up to ``timeout`` (default: the config's
        ``drain_timeout_seconds``); whatever is still unfinished at the
        deadline is cancelled.  ``drain=False`` cancels everything
        immediately.
        """
        with self._lock:
            if self._stopped.is_set():
                return
            self._draining = True
        if timeout is None:
            timeout = self.config.drain_timeout_seconds
        logger.info("shutdown: drain=%s timeout=%.1fs", drain, timeout)
        if drain:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if self.queue.depth() == 0 and self.stats.running == 0:
                    break
                time.sleep(0.05)
        # Cancel whatever is left (no-op after a clean drain).
        for item in self.queue.drain():
            item.transition(JobState.CANCELLED, now=time.monotonic())
            item.add_event({"stage": "cancelled", "where": "shutdown"})
            self.stats.inc("cancelled")
        for record in self.jobs():
            if not record.done:
                record.request_cancel()
        self.queue.close()
        self._stopped.set()
        self._dispatcher.join(timeout=10.0)
        with self._lock:
            monitors = list(self._monitors)
        for thread in monitors:
            thread.join(timeout=10.0)
        logger.info("job runtime stopped")

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _select_tier(self, record: JobRecord) -> DegradationTier:
        """Pick the degradation tier from observed queue pressure."""
        waited = time.monotonic() - record.enqueued_at
        backlog = self.queue.estimated_wait_seconds(self.config.workers)
        pressure = max(waited, backlog)
        chosen = self.config.tiers[0]
        for tier in self.config.tiers:
            if pressure >= tier.activate_wait_seconds:
                chosen = tier
        return chosen

    def _dispatch_loop(self) -> None:
        while not self._stopped.is_set():
            if not self._slots.acquire(timeout=0.1):
                continue
            with self._lock:
                background_ok = \
                    self._background_running < self._background_limit
            record = self.queue.get(timeout=0.1,
                                    background_ok=background_ok)
            if record is None:
                self._slots.release()
                continue
            if record.cancel_requested:
                record.transition(JobState.CANCELLED, now=time.monotonic())
                record.add_event({"stage": "cancelled", "where": "dispatch"})
                self.stats.inc("cancelled")
                self._slots.release()
                continue
            if record.spec.priority >= BACKGROUND_PRIORITY:
                with self._lock:
                    self._background_running += 1
                self.stats.inc("background_dispatched")
            monitor = threading.Thread(
                target=self._run_job, args=(record,),
                name=f"serve-job-{record.spec.job_id}", daemon=True)
            with self._lock:
                self._monitors.append(monitor)
                self._monitors = [t for t in self._monitors if t.is_alive()
                                  or t is monitor]
            self.stats.running_delta(1)
            monitor.start()

    # ------------------------------------------------------------------
    # one job, all attempts (runs on its monitor thread)
    # ------------------------------------------------------------------
    def _run_job(self, record: JobRecord) -> None:
        spec = record.spec
        started = time.monotonic()
        wait = started - record.enqueued_at
        self.stats.note_wait(wait)
        tier = self._select_tier(record)
        if tier is not self.config.tiers[0]:
            self.stats.inc(f"degraded_{tier.name}")
            record.add_event({"stage": "degraded", "tier": tier.name})
            logger.warning("%s degraded to tier %s (queue pressure)",
                           spec.job_id, tier.name)
        retries = spec.max_retries
        if retries is None:
            retries = self.config.max_retries
        merger: TraceMerger | None = None
        if self.config.trace:
            context = TraceContext(
                trace_id=spec.job_id,
                parent_span=f"job:{spec.job_id}",
                max_frame_records=self.config.telemetry_frame_records,
                max_total_records=self.config.telemetry_max_records,
            )
            merger = TraceMerger(context,
                                 process_name=f"serve {spec.job_id}")
        try:
            outcome: str | None = None
            for attempt in range(1, retries + 2):
                outcome = self._run_attempt(record, tier, attempt, merger)
                if outcome in ("succeeded", "failed", "cancelled"):
                    break
                # outcome == "crashed": back off, then go again.
                if attempt <= retries:
                    backoff = (self.config.retry_backoff_seconds
                               * self.config.retry_backoff_factor
                               ** (attempt - 1))
                    self.stats.inc("retries")
                    record.record_recovery({
                        "action": "retry", "attempt": attempt,
                        "backoff_seconds": backoff,
                    })
                    record.add_event({"stage": "retry_scheduled",
                                      "attempt": attempt,
                                      "backoff_seconds": backoff})
                    logger.warning(
                        "%s attempt %d crashed; retrying in %.2fs",
                        spec.job_id, attempt, backoff)
                    if record.wait_cancel(backoff):
                        record.transition(JobState.CANCELLED,
                                          now=time.monotonic())
                        record.add_event({"stage": "cancelled",
                                          "where": "backoff"})
                        self.stats.inc("cancelled")
                        outcome = "cancelled"
                        break
            if outcome == "crashed":
                record.transition(
                    JobState.FAILED, now=time.monotonic(),
                    error=f"worker crashed on all "
                          f"{retries + 1} attempt(s)")
                record.add_event({"stage": "failed",
                                  "reason": "retry_budget_exhausted"})
                self.stats.inc("failed")
                logger.error("%s failed: retry budget exhausted",
                             spec.job_id)
        finally:
            if merger is not None and record.trace() is None:
                # Failed/cancelled jobs keep whatever trace evidence
                # their attempts shipped before dying.
                record.set_trace(merger.chrome_trace())
            service_seconds = time.monotonic() - started
            self.fleet.note_service_seconds(service_seconds)
            self.queue.note_service_seconds(service_seconds)
            self.stats.running_delta(-1)
            if spec.priority >= BACKGROUND_PRIORITY:
                with self._lock:
                    self._background_running -= 1
            self._slots.release()

    def _spawn_attempt(self, record: JobRecord, tier: DegradationTier,
                       attempt: int = 1,
                       merger: TraceMerger | None = None):
        """Fire parent-side fault sites and start one worker process."""
        spec = record.spec
        payload: dict[str, Any] = {
            "spec": dict(spec.__dict__),
            "tier": {
                "name": tier.name,
                "max_iterations_factor": tier.max_iterations_factor,
                "legalizer": tier.legalizer,
                "skip_detailed": tier.skip_detailed,
            },
            "aux_root": self.aux_root,
        }
        if merger is not None:
            # Stable lane per attempt: attempt 1 -> pid 2, ... so the
            # merged trace is deterministic given the retry history.
            payload["trace"] = merger.context.child(
                f"{spec.job_id}/a{attempt}", lane=attempt + 1).to_wire()
        crash = faults.fire("serve.worker.crash")
        if crash is not None:
            payload["_inject"] = {"mode": "crash",
                                  "at": crash.seed if crash.seed > 0 else 2}
        else:
            hang = faults.fire("serve.worker.hang")
            if hang is not None:
                payload["_inject"] = {
                    "mode": "hang",
                    "seconds": hang.seed if hang.seed > 0 else 3600.0,
                }
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_entry, args=(payload, child_conn),
            name=f"serve-worker-{spec.job_id}", daemon=True)
        process.start()
        child_conn.close()
        return process, parent_conn

    def _hard_kill_seconds(self, spec: JobSpec) -> float:
        if spec.deadline_seconds is not None:
            return spec.deadline_seconds * self.config.deadline_grace_factor
        return self.config.no_deadline_kill_seconds

    @staticmethod
    def _trace_attempt(merger: TraceMerger | None, attempt: int,
                       tier: DegradationTier, start: float,
                       outcome: str) -> None:
        """Close the parent-side span over one worker attempt."""
        if merger is not None:
            merger.add_span(f"attempt {attempt}", start,
                            time.perf_counter(),
                            tier=tier.name, outcome=outcome)

    def _run_attempt(self, record: JobRecord, tier: DegradationTier,
                     attempt: int,
                     merger: TraceMerger | None = None) -> str:
        """One isolated worker attempt; returns the outcome class:
        ``succeeded`` / ``failed`` / ``cancelled`` / ``crashed``."""
        spec = record.spec
        record.start_attempt(tier.name, time.monotonic())
        record.add_event({"stage": "attempt_started", "attempt": attempt,
                          "tier": tier.name})
        process, conn = self._spawn_attempt(record, tier, attempt, merger)
        kill_after = self._hard_kill_seconds(spec)
        attempt_start = time.monotonic()
        span_start = time.perf_counter()
        result: dict[str, Any] | None = None
        error: dict[str, Any] | None = None
        try:
            while True:
                if record.cancel_requested:
                    self._reap(process, kill=False)
                    record.transition(JobState.CANCELLED,
                                      now=time.monotonic())
                    record.add_event({"stage": "cancelled",
                                      "where": "running",
                                      "attempt": attempt})
                    self.stats.inc("cancelled")
                    logger.info("%s cancelled while running", spec.job_id)
                    self._trace_attempt(merger, attempt, tier,
                                        span_start, "cancelled")
                    return "cancelled"
                got = False
                try:
                    if conn.poll(0.05):
                        kind, body = conn.recv()
                        got = True
                        if kind == "event":
                            record.add_event(body)
                        elif kind == "telemetry":
                            if merger is not None:
                                merger.ingest(body)
                                self.fleet.observe_frame(body)
                        elif kind == "result":
                            result = body
                        else:
                            error = body
                except (EOFError, OSError):
                    pass  # worker died with the pipe open -> crash path
                if result is not None or error is not None:
                    process.join(timeout=10.0)
                    break
                if not got and not process.is_alive():
                    process.join(timeout=1.0)
                    # Drain messages the worker sent just before exiting
                    # so a clean finish is never misread as a crash.
                    try:
                        while conn.poll(0):
                            kind, body = conn.recv()
                            if kind == "event":
                                record.add_event(body)
                            elif kind == "telemetry":
                                if merger is not None:
                                    merger.ingest(body)
                                    self.fleet.observe_frame(body)
                            elif kind == "result":
                                result = body
                            else:
                                error = body
                    except (EOFError, OSError):
                        pass
                    break
                if time.monotonic() - attempt_start > kill_after:
                    self._reap(process, kill=True)
                    self.stats.inc("timeouts")
                    record.record_recovery({
                        "action": "hard_kill", "attempt": attempt,
                        "after_seconds": kill_after,
                    })
                    record.add_event({"stage": "hard_killed",
                                      "attempt": attempt,
                                      "after_seconds": kill_after})
                    logger.warning("%s attempt %d hard-killed after %.1fs",
                                   spec.job_id, attempt, kill_after)
                    self._trace_attempt(merger, attempt, tier,
                                        span_start, "hard_killed")
                    return "crashed"
        finally:
            conn.close()

        if result is not None:
            self._trace_attempt(merger, attempt, tier, span_start,
                                "succeeded")
            self._finish_success(record, result, merger)
            return "succeeded"
        if error is not None:
            self._trace_attempt(merger, attempt, tier, span_start,
                                "failed")
            record.transition(
                JobState.FAILED, now=time.monotonic(),
                error=f"{error.get('type', 'Error')}: "
                      f"{error.get('message', '')}")
            record.add_event({"stage": "failed", "attempt": attempt,
                              "reason": error.get("type")})
            self.stats.inc("failed")
            logger.warning("%s failed deterministically: %s",
                           spec.job_id, record.error)
            return "failed"
        # Abnormal exit with nothing on the pipe: a crash.
        self._trace_attempt(merger, attempt, tier, span_start, "crashed")
        self.stats.inc("crashes")
        record.record_recovery({
            "action": "crash_detected", "attempt": attempt,
            "exitcode": process.exitcode,
        })
        record.add_event({"stage": "worker_crashed", "attempt": attempt,
                          "exitcode": process.exitcode})
        logger.warning("%s attempt %d: worker exited abnormally (%s)",
                       spec.job_id, attempt, process.exitcode)
        return "crashed"

    def _reap(self, process, kill: bool) -> None:
        """Terminate (or kill) a worker and wait for the OS to reap it."""
        if process.is_alive():
            if kill:
                process.kill()
            else:
                process.terminate()
        process.join(timeout=10.0)
        if process.is_alive():  # pragma: no cover - last resort
            process.kill()
            process.join(timeout=10.0)

    def _finish_success(self, record: JobRecord,
                        body: dict[str, Any],
                        merger: TraceMerger | None = None) -> None:
        metrics = body.pop("metrics", None)
        report_html = body.pop("report_html", None)
        record.complete(body, report_html, metrics, time.monotonic())
        self.stats.inc("completed")
        trace_doc = None
        if merger is not None:
            trace_doc = merger.chrome_trace()
            record.set_trace(trace_doc)
        try:
            run_dir = self.registry_for(record.spec.tenant).capture(
                metrics or {}, name=record.spec.name,
                report_html=report_html,
                trace_doc=trace_doc,
                manifest_extra={
                    "job_id": record.spec.job_id,
                    "tenant": record.spec.tenant,
                    "attempts": record.attempts,
                    "tier": record.tier,
                },
            )
            record.set_run_dir(run_dir)
        except OSError:
            logger.exception("failed to archive %s into the run registry",
                             record.spec.job_id)
        record.add_event({"stage": "succeeded",
                          "hpwl_legal": body.get("hpwl_legal")})
        logger.info("%s succeeded: HPWL %.1f in %s iterations",
                    record.spec.job_id, body.get("hpwl_legal", -1.0),
                    body.get("iterations"))
