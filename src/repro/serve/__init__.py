"""Placement-as-a-service: a crash-isolated async job runtime.

``python -m repro.serve`` starts an HTTP/JSON service that accepts
placement jobs into a bounded priority queue, runs each attempt in its
own worker *process* (so crashes never take the service down), retries
crashed attempts with exponential backoff, degrades gracefully under
queue pressure, and archives every finished job into the
:mod:`repro.runs` registry under its tenant's namespace.

See ``docs/serving.md`` for the API reference and failure-mode table.
"""

from .api import PlacementService, serve_forever
from .config import DEFAULT_TIERS, DegradationTier, ServeConfig
from .jobs import JobRecord, JobSpec, JobState, JobValidationError
from .queue import BoundedPriorityQueue, QueueFull
from .runtime import JobRuntime, ServiceStats, ServiceUnavailable
from .tenants import RateLimited, TenantTable
from .worker import CRASH_EXIT_CODE

__all__ = [
    "BoundedPriorityQueue",
    "CRASH_EXIT_CODE",
    "DEFAULT_TIERS",
    "DegradationTier",
    "JobRecord",
    "JobRuntime",
    "JobSpec",
    "JobState",
    "JobValidationError",
    "PlacementService",
    "QueueFull",
    "RateLimited",
    "ServeConfig",
    "ServiceStats",
    "ServiceUnavailable",
    "TenantTable",
    "serve_forever",
]
