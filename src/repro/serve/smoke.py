"""End-to-end self-test of the service, used by the CI smoke job.

Boots a real :class:`~repro.serve.api.PlacementService` on an ephemeral
port, then talks to it exclusively over HTTP like a client would:

1. submits a small synthetic placement and polls it to completion,
2. asserts the archived run (registry entry, manifest, HTML report)
   exists under the tenant's namespace,
3. arms a ``serve.worker.crash`` fault, submits again, and asserts the
   job still succeeds (on the retry) with the crash recorded in its
   recovery log — while ``/healthz`` answered 200 throughout.

Returns 0 on success; raises :class:`SmokeFailure` with a specific
message otherwise.  All output goes through :mod:`logging` — the
``__main__`` wrapper owns the exit code and user-facing text.
"""

from __future__ import annotations

import json
import logging
import os
import time
import urllib.error
import urllib.request
from typing import Any

from .. import faults
from ..runs import RunRegistry
from .api import PlacementService
from .config import ServeConfig

__all__ = ["SmokeFailure", "run_smoke"]

logger = logging.getLogger(__name__)


class SmokeFailure(AssertionError):
    """One smoke assertion failed (the message says which)."""


def _request(method: str, url: str, payload: dict[str, Any] | None = None,
             tenant: str = "smoke") -> tuple[int, dict[str, Any]]:
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method=method,
                                     headers={"X-Tenant": tenant})
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _stream_events(base: str, job_id: str, tenant: str = "smoke",
                   last_event_id: int | None = None,
                   timeout: float = 60.0) -> list[tuple[int, str, dict]]:
    """Consume the SSE stream until its ``done`` event; parsed frames."""
    request = urllib.request.Request(
        f"{base}/v1/jobs/{job_id}/events?stream=1",
        headers={"X-Tenant": tenant, "Accept": "text/event-stream"})
    if last_event_id is not None:
        request.add_header("Last-Event-ID", str(last_event_id))
    frames: list[tuple[int, str, dict]] = []
    with urllib.request.urlopen(request, timeout=timeout) as response:
        _check(response.headers.get_content_type() == "text/event-stream",
               f"SSE content type is {response.headers.get_content_type()}")
        event_id, event_type, data = 0, "", ""
        for raw in response:
            line = raw.decode().rstrip("\n")
            if line.startswith("id: "):
                event_id = int(line[4:])
            elif line.startswith("event: "):
                event_type = line[7:]
            elif line.startswith("data: "):
                data = line[6:]
            elif not line and event_type:
                frames.append((event_id, event_type, json.loads(data)))
                if event_type == "done":
                    break
                event_type, data = "", ""
    return frames


def _submit_and_wait(base: str, payload: dict[str, Any],
                     timeout: float = 120.0) -> dict[str, Any]:
    status, body = _request("POST", f"{base}/v1/jobs", payload)
    _check(status == 202, f"submit returned {status}: {body}")
    job_id = body["job_id"]
    logger.info("submitted %s", job_id)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health, _ = _request("GET", f"{base}/healthz")
        _check(health == 200, "/healthz went down while a job ran")
        status, body = _request("GET", f"{base}/v1/jobs/{job_id}")
        _check(status == 200, f"status poll returned {status}")
        if body["state"] in ("succeeded", "failed", "cancelled"):
            return body
        time.sleep(0.2)
    raise SmokeFailure(f"job {job_id} did not finish within {timeout}s")


def run_smoke(registry_root: str = "serve-smoke-runs",
              trace: bool = False) -> int:
    """The smoke scenario; returns 0 so ``__main__`` can exit with it."""
    config = ServeConfig(port=0, workers=2, queue_capacity=8,
                         registry_root=registry_root,
                         retry_backoff_seconds=0.05,
                         trace=trace)
    service = PlacementService(config).start()
    host, port = service.address
    base = f"http://{host}:{port}"
    payload = {
        "name": "smoke",
        "workload": {"kind": "synthetic", "num_cells": 60, "seed": 7},
        "config": {"max_iterations": 20},
        "legalizer": "tetris",
    }
    try:
        # Clean run first.
        final = _submit_and_wait(base, payload)
        _check(final["state"] == "succeeded",
               f"clean job ended {final['state']}: {final.get('error')}")
        run_dir = final.get("run_dir")
        _check(bool(run_dir), "finished job has no run_dir")
        _check(os.path.exists(os.path.join(run_dir, "manifest.json")),
               "archived run is missing manifest.json")
        _check(os.path.exists(os.path.join(run_dir, "report.html")),
               "archived run is missing report.html")
        registry = RunRegistry(os.path.join(registry_root, "smoke"))
        _check(len(registry.run_ids()) >= 1,
               "run registry index has no entry for the smoke run")
        logger.info("clean run archived at %s", run_dir)

        # The SSE stream replays the finished job's events and closes.
        frames = _stream_events(base, final["job_id"])
        kinds = [kind for _, kind, _ in frames]
        _check("progress" in kinds, "SSE stream carried no progress events")
        _check(kinds[-1] == "done", "SSE stream did not end with done")
        stages = [body.get("stage") for _, kind, body in frames
                  if kind == "progress"]
        _check("doctor" in stages, "SSE stream carried no doctor event")

        if trace:
            status, doc = _request(
                "GET", f"{base}/v1/jobs/{final['job_id']}/trace")
            _check(status == 200, f"trace endpoint returned {status}")
            _check(bool(doc.get("traceEvents")),
                   "merged trace has no events")
            _check(doc.get("otherData", {}).get("workers"),
                   "merged trace records no worker lanes")
            _check(os.path.exists(os.path.join(run_dir, "trace.json")),
                   "archived run is missing trace.json")
            with urllib.request.urlopen(urllib.request.Request(
                    f"{base}/metricz?format=prom"),
                    timeout=30.0) as response:
                prom = response.read().decode()
            _check("# TYPE repro_fleet_frames counter" in prom,
                   "/metricz prom output lacks the fleet rollup")
            logger.info("merged trace spans %d workers",
                        len(doc["otherData"]["workers"]))

        # Now with one injected worker crash: must succeed on the retry.
        faults.install(faults.FaultPlan((
            faults.FaultSpec("serve.worker.crash", at=1),
        )))
        try:
            final = _submit_and_wait(base, payload)
        finally:
            faults.clear()
        _check(final["state"] == "succeeded",
               f"crash-injected job ended {final['state']}: "
               f"{final.get('error')}")
        _check(final["attempts"] >= 2,
               f"expected a retry after the crash, saw "
               f"{final['attempts']} attempt(s)")
        recovery = final.get("recovery", [])
        _check(any(e.get("action") == "crash_detected" for e in recovery),
               "recovery log does not record the injected crash")
        logger.info("crash-injected run recovered in %d attempts",
                    final["attempts"])
    finally:
        service.stop(drain=False, timeout=5.0)
    logger.info("serve smoke passed")
    return 0
