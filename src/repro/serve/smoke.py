"""End-to-end self-test of the service, used by the CI smoke job.

Boots a real :class:`~repro.serve.api.PlacementService` on an ephemeral
port, then talks to it exclusively over HTTP like a client would:

1. submits a small synthetic placement and polls it to completion,
2. asserts the archived run (registry entry, manifest, HTML report)
   exists under the tenant's namespace,
3. arms a ``serve.worker.crash`` fault, submits again, and asserts the
   job still succeeds (on the retry) with the crash recorded in its
   recovery log — while ``/healthz`` answered 200 throughout.

Returns 0 on success; raises :class:`SmokeFailure` with a specific
message otherwise.  All output goes through :mod:`logging` — the
``__main__`` wrapper owns the exit code and user-facing text.
"""

from __future__ import annotations

import json
import logging
import os
import time
import urllib.error
import urllib.request
from typing import Any

from .. import faults
from ..runs import RunRegistry
from .api import PlacementService
from .config import ServeConfig

__all__ = ["SmokeFailure", "run_smoke"]

logger = logging.getLogger(__name__)


class SmokeFailure(AssertionError):
    """One smoke assertion failed (the message says which)."""


def _request(method: str, url: str, payload: dict[str, Any] | None = None,
             tenant: str = "smoke") -> tuple[int, dict[str, Any]]:
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method=method,
                                     headers={"X-Tenant": tenant})
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _submit_and_wait(base: str, payload: dict[str, Any],
                     timeout: float = 120.0) -> dict[str, Any]:
    status, body = _request("POST", f"{base}/v1/jobs", payload)
    _check(status == 202, f"submit returned {status}: {body}")
    job_id = body["job_id"]
    logger.info("submitted %s", job_id)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health, _ = _request("GET", f"{base}/healthz")
        _check(health == 200, "/healthz went down while a job ran")
        status, body = _request("GET", f"{base}/v1/jobs/{job_id}")
        _check(status == 200, f"status poll returned {status}")
        if body["state"] in ("succeeded", "failed", "cancelled"):
            return body
        time.sleep(0.2)
    raise SmokeFailure(f"job {job_id} did not finish within {timeout}s")


def run_smoke(registry_root: str = "serve-smoke-runs") -> int:
    """The smoke scenario; returns 0 so ``__main__`` can exit with it."""
    config = ServeConfig(port=0, workers=2, queue_capacity=8,
                         registry_root=registry_root,
                         retry_backoff_seconds=0.05)
    service = PlacementService(config).start()
    host, port = service.address
    base = f"http://{host}:{port}"
    payload = {
        "name": "smoke",
        "workload": {"kind": "synthetic", "num_cells": 60, "seed": 7},
        "config": {"max_iterations": 20},
        "legalizer": "tetris",
    }
    try:
        # Clean run first.
        final = _submit_and_wait(base, payload)
        _check(final["state"] == "succeeded",
               f"clean job ended {final['state']}: {final.get('error')}")
        run_dir = final.get("run_dir")
        _check(bool(run_dir), "finished job has no run_dir")
        _check(os.path.exists(os.path.join(run_dir, "manifest.json")),
               "archived run is missing manifest.json")
        _check(os.path.exists(os.path.join(run_dir, "report.html")),
               "archived run is missing report.html")
        registry = RunRegistry(os.path.join(registry_root, "smoke"))
        _check(len(registry.run_ids()) >= 1,
               "run registry index has no entry for the smoke run")
        logger.info("clean run archived at %s", run_dir)

        # Now with one injected worker crash: must succeed on the retry.
        faults.install(faults.FaultPlan((
            faults.FaultSpec("serve.worker.crash", at=1),
        )))
        try:
            final = _submit_and_wait(base, payload)
        finally:
            faults.clear()
        _check(final["state"] == "succeeded",
               f"crash-injected job ended {final['state']}: "
               f"{final.get('error')}")
        _check(final["attempts"] >= 2,
               f"expected a retry after the crash, saw "
               f"{final['attempts']} attempt(s)")
        recovery = final.get("recovery", [])
        _check(any(e.get("action") == "crash_detected" for e in recovery),
               "recovery log does not record the injected crash")
        logger.info("crash-injected run recovered in %d attempts",
                    final["attempts"])
    finally:
        service.stop(drain=False, timeout=5.0)
    logger.info("serve smoke passed")
    return 0
