"""Configuration of the placement service.

Everything an operator tunes lives here: queue bounds, worker count,
retry budgets, per-tenant rate limits, and the load-shedding
degradation ladder.  The defaults are sized for a small shared box; the
``python -m repro.serve`` CLI exposes the common knobs as flags.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace

__all__ = [
    "DEFAULT_TIERS",
    "DegradationTier",
    "ServeConfig",
    "default_start_method",
]


def default_start_method() -> str:
    """``fork`` where the platform offers it (fast), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class DegradationTier:
    """One rung of the load-shedding ladder.

    A tier activates when the estimated queue wait at dispatch time
    reaches ``activate_wait_seconds``.  Its overrides trade placement
    quality for throughput on the job being dispatched:

    * ``max_iterations_factor`` scales the job's iteration budget,
    * ``legalizer`` forces a (cheaper) legalizer, e.g. ``"tetris"``,
    * ``skip_detailed`` drops detailed placement entirely.

    Tier 0 must be the no-override tier (healthy service).
    """

    name: str
    activate_wait_seconds: float = 0.0
    max_iterations_factor: float = 1.0
    legalizer: str | None = None
    skip_detailed: bool = False

    def __post_init__(self) -> None:
        if self.activate_wait_seconds < 0:
            raise ValueError("activate_wait_seconds must be >= 0")
        if not 0.0 < self.max_iterations_factor <= 1.0:
            raise ValueError("max_iterations_factor must lie in (0, 1]")
        if self.legalizer not in (None, "tetris", "abacus"):
            raise ValueError(f"unknown tier legalizer {self.legalizer!r}")


#: The default ladder: full quality, then halved iteration budgets,
#: then survival mode (quartered budget, tetris-only, no detailed
#: placement).  Thresholds are estimated queue wait in seconds.
DEFAULT_TIERS = (
    DegradationTier("full"),
    DegradationTier("reduced", activate_wait_seconds=15.0,
                    max_iterations_factor=0.5),
    DegradationTier("survival", activate_wait_seconds=60.0,
                    max_iterations_factor=0.25, legalizer="tetris",
                    skip_detailed=True),
)


@dataclass(frozen=True)
class ServeConfig:
    """All knobs of the job runtime and its HTTP front end.

    Admission and backpressure
    --------------------------
    * ``queue_capacity`` — bound on queued (not yet running) jobs;
      submissions beyond it get HTTP 429 with a ``Retry-After``.
    * ``tenant_rate`` / ``tenant_burst`` — per-tenant token bucket:
      sustained submissions per second and the burst allowance.

    Workers and isolation
    ---------------------
    * ``workers`` — concurrent worker processes; each job attempt runs
      in its own process so a crash never touches the service.
    * ``start_method`` — multiprocessing start method for workers.
    * ``max_retries`` — extra attempts after a crashed/hung attempt.
    * ``retry_backoff_seconds`` / ``retry_backoff_factor`` — exponential
      backoff between attempts (deterministic, no jitter: the service
      preserves the repo's reproducibility story).
    * ``default_deadline_seconds`` — per-job soft deadline handed to the
      in-worker Supervisor (graceful best-so-far exit); jobs may lower
      or raise it per submission up to ``max_deadline_seconds``.
    * ``deadline_grace_factor`` — the parent hard-kills a worker that
      overruns ``deadline * factor`` (covers hangs before/outside the
      supervised loop).
    * ``no_deadline_kill_seconds`` — hard-kill budget for jobs submitted
      without any deadline.

    Degradation and shutdown
    ------------------------
    * ``tiers`` — the load-shedding ladder (see
      :class:`DegradationTier`); selected per dispatch from the
      estimated queue wait.
    * ``drain_timeout_seconds`` — how long a draining shutdown waits for
      accepted work before cancelling the remainder.

    Artifacts
    ---------
    * ``registry_root`` — run-registry root; every finished job lands
      under ``<root>/<tenant>/`` with its metrics and HTML report.
    * ``keep_events`` — per-job bound on retained progress events.

    Distributed tracing
    -------------------
    * ``trace`` — when True, every worker attempt receives a
      :class:`~repro.telemetry.TraceContext` and streams telemetry
      frames (spans, series increments, gauges) back over its result
      pipe; the runtime merges them into one Chrome trace per job and
      feeds the fleet aggregator behind ``/metricz``.  Off by default:
      workers then ship nothing and allocate nothing extra.
    * ``telemetry_frame_records`` / ``telemetry_max_records`` — span
      budgets per frame and per worker; overflow is counted, never
      silent.
    """

    host: str = "127.0.0.1"
    port: int = 8760

    workers: int = 2
    queue_capacity: int = 16
    start_method: str = field(default_factory=default_start_method)

    max_retries: int = 2
    retry_backoff_seconds: float = 0.25
    retry_backoff_factor: float = 2.0

    default_deadline_seconds: float | None = 120.0
    max_deadline_seconds: float = 600.0
    deadline_grace_factor: float = 1.5
    no_deadline_kill_seconds: float = 900.0

    tenant_rate: float = 5.0
    tenant_burst: int = 10

    tiers: tuple[DegradationTier, ...] = DEFAULT_TIERS
    drain_timeout_seconds: float = 30.0

    registry_root: str = "serve-runs"
    keep_events: int = 2000

    trace: bool = False
    telemetry_frame_records: int = 256
    telemetry_max_records: int = 5000

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be >= 0")
        if self.retry_backoff_factor < 1.0:
            raise ValueError("retry_backoff_factor must be >= 1")
        if self.default_deadline_seconds is not None \
                and self.default_deadline_seconds <= 0:
            raise ValueError("default_deadline_seconds must be positive")
        if self.max_deadline_seconds <= 0:
            raise ValueError("max_deadline_seconds must be positive")
        if self.deadline_grace_factor < 1.0:
            raise ValueError("deadline_grace_factor must be >= 1")
        if self.no_deadline_kill_seconds <= 0:
            raise ValueError("no_deadline_kill_seconds must be positive")
        if self.tenant_rate <= 0:
            raise ValueError("tenant_rate must be positive")
        if self.tenant_burst < 1:
            raise ValueError("tenant_burst must be >= 1")
        if self.drain_timeout_seconds < 0:
            raise ValueError("drain_timeout_seconds must be >= 0")
        if self.keep_events < 10:
            raise ValueError("keep_events must be >= 10")
        if self.telemetry_frame_records < 1:
            raise ValueError("telemetry_frame_records must be >= 1")
        if self.telemetry_max_records < self.telemetry_frame_records:
            raise ValueError("telemetry_max_records must be >= "
                             "telemetry_frame_records")
        if not self.tiers:
            raise ValueError("at least one degradation tier is required")
        if self.tiers[0].activate_wait_seconds > 0 \
                or self.tiers[0].max_iterations_factor < 1.0 \
                or self.tiers[0].legalizer is not None \
                or self.tiers[0].skip_detailed:
            raise ValueError("tier 0 must be the no-override tier")
        waits = [tier.activate_wait_seconds for tier in self.tiers]
        if waits != sorted(waits):
            raise ValueError("tier thresholds must be non-decreasing")
        if self.start_method not in \
                multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {self.start_method!r} not available here"
            )

    def with_overrides(self, **kwargs) -> "ServeConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)
