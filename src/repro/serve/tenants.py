"""Per-tenant admission control: token buckets and namespaces.

Each tenant gets an independent token bucket (``rate`` tokens/second,
``burst`` capacity).  A submission consumes one token; an empty bucket
means HTTP 429 with the exact ``Retry-After`` until the next token.
Tenants also namespace the run registry — tenant ``acme``'s runs land
under ``<registry_root>/acme/`` and are invisible to other tenants'
listing calls.
"""

from __future__ import annotations

import threading
import time

__all__ = ["RateLimited", "TenantTable"]


class RateLimited(Exception):
    """Tenant over its submission rate; carries a ``retry_after``."""

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} over its submission rate; "
            f"retry after {retry_after:.2f}s"
        )
        self.tenant = tenant
        self.retry_after = retry_after


class _Bucket:
    """One token bucket (monotonic clock, lazily refilled)."""

    __slots__ = ("tokens", "stamp")

    def __init__(self, burst: int, now: float) -> None:
        self.tokens = float(burst)
        self.stamp = now


class TenantTable:
    """All known tenants and their buckets (lock-guarded)."""

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._lock = threading.Lock()
        self._buckets: dict[str, _Bucket] = {}

    def admit(self, tenant: str) -> None:
        """Take one token for ``tenant`` or raise :class:`RateLimited`."""
        now = time.monotonic()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = _Bucket(self.burst, now)
                self._buckets[tenant] = bucket
            refill = (now - bucket.stamp) * self.rate
            bucket.tokens = min(bucket.tokens + refill, float(self.burst))
            bucket.stamp = now
            if bucket.tokens < 1.0:
                raise RateLimited(tenant, (1.0 - bucket.tokens) / self.rate)
            bucket.tokens -= 1.0

    def known_tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._buckets)
