"""A bounded priority queue with explicit backpressure.

Unlike :class:`queue.PriorityQueue`, this queue

* *rejects* instead of blocking when full — the HTTP layer turns
  :class:`QueueFull` into a 429 with a ``Retry-After`` — because a
  service that buffers unboundedly under overload fails later and
  worse,
* supports O(log n) removal of cancelled jobs so a cancel reclaims the
  queue slot immediately,
* reports its depth and the age of its oldest entry, which drive the
  readiness probe and the degradation-tier selection.

Orders by ``(priority, arrival ordinal)`` — lower priority numbers
dispatch first, FIFO within a priority class.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Any

__all__ = ["BACKGROUND_PRIORITY", "BoundedPriorityQueue", "QueueFull"]

#: Priorities at or above this value form the *background band*:
#: portfolio-racing variants and other batch work submit here.  The
#: dispatcher only accepts background entries while at least one worker
#: slot stays free for interactive jobs, so racing never starves users.
#: Interactive priorities (< this value) always sort ahead of background
#: ones in the heap, so the band check reduces to inspecting the top.
BACKGROUND_PRIORITY = 10


class QueueFull(Exception):
    """The queue is at capacity; carries a ``retry_after`` hint."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"queue full; retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class BoundedPriorityQueue:
    """Heap of ``(priority, seq, job_id, item)`` under one condition."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Condition()
        self._heap: list[list[Any]] = []
        self._live: dict[str, list[Any]] = {}
        self._seq = 0
        self._closed = False
        #: EWMA of recent job service seconds, fed by the runtime; the
        #: ``Retry-After`` hint and tier selection scale with it.
        self._service_seconds = 1.0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def put(self, job_id: str, priority: int, item: Any,
            workers: int = 1) -> int:
        """Enqueue; returns the depth after insert.

        Raises :class:`QueueFull` at capacity with a ``retry_after``
        estimated from the current backlog and service rate, and
        :class:`RuntimeError` once the queue is closed for draining.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if len(self._live) >= self.capacity:
                raise QueueFull(self._retry_after_locked(workers))
            self._seq += 1
            entry = [priority, self._seq, job_id, item, time.monotonic()]
            self._live[job_id] = entry
            heapq.heappush(self._heap, entry)
            # notify_all: a waiter restricted to the interactive band may
            # decline a background entry, so every waiter must recheck.
            self._lock.notify_all()
            return len(self._live)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def get(self, timeout: float | None = None, *,
            background_ok: bool = True) -> Any | None:
        """Pop the best entry, blocking up to ``timeout``; None on idle.

        ``background_ok=False`` restricts the pop to the interactive
        band (priority < :data:`BACKGROUND_PRIORITY`); interactive
        entries always sort ahead of background ones, so inspecting the
        heap top suffices.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                while self._heap and self._heap[0][3] is None:
                    heapq.heappop(self._heap)  # tombstoned (removed) entry
                if self._heap and (background_ok
                                   or self._heap[0][0] < BACKGROUND_PRIORITY):
                    entry = heapq.heappop(self._heap)
                    del self._live[entry[2]]
                    return entry[3]
                if self._closed:
                    return None
                if deadline is None:
                    self._lock.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._lock.wait(remaining)

    def remove(self, job_id: str) -> bool:
        """Drop a queued job (cancellation); True if it was queued."""
        with self._lock:
            entry = self._live.pop(job_id, None)
            if entry is None:
                return False
            entry[3] = None  # tombstone; popped lazily by get()
            return True

    def drain(self) -> list[Any]:
        """Remove and return every queued item (immediate shutdown)."""
        with self._lock:
            items = [entry[3] for entry in self._heap
                     if entry[3] is not None]
            self._heap.clear()
            self._live.clear()
            return items

    def close(self) -> None:
        """Stop accepting puts; blocked getters drain then see None."""
        with self._lock:
            self._closed = True
            self._lock.notify_all()

    # ------------------------------------------------------------------
    # pressure signals
    # ------------------------------------------------------------------
    def depth(self) -> int:
        with self._lock:
            return len(self._live)

    def interactive_depth(self) -> int:
        """Queued entries in the interactive band only."""
        with self._lock:
            return sum(1 for entry in self._live.values()
                       if entry[0] < BACKGROUND_PRIORITY)

    def oldest_wait_seconds(self) -> float:
        """Age of the oldest still-queued entry (0 when empty)."""
        with self._lock:
            oldest = None
            for entry in self._live.values():
                if oldest is None or entry[4] < oldest:
                    oldest = entry[4]
            if oldest is None:
                return 0.0
            return max(time.monotonic() - oldest, 0.0)

    def note_service_seconds(self, seconds: float) -> None:
        """Fold one completed job's service time into the EWMA."""
        with self._lock:
            self._service_seconds = (
                0.7 * self._service_seconds + 0.3 * max(seconds, 0.01)
            )

    def estimated_wait_seconds(self, workers: int) -> float:
        """Backlog drain estimate used for tier selection / Retry-After."""
        with self._lock:
            return self._estimated_wait_locked(workers)

    def _estimated_wait_locked(self, workers: int) -> float:
        return len(self._live) * self._service_seconds / max(workers, 1)

    def _retry_after_locked(self, workers: int) -> float:
        # One service interval must pass before a slot can free up; cap
        # the hint so clients poll at a sane rate even under pile-ups.
        estimate = self._service_seconds / max(workers, 1)
        return min(max(estimate, 0.5), 60.0)
