"""The worker side of the service: one job attempt in one process.

:func:`worker_entry` is the ``multiprocessing.Process`` target.  It
rebuilds the netlist from the job's workload descriptor, runs the full
supervised placement flow, and streams progress events followed by a
single terminal message back over the pipe:

* ``("event", {...})`` — progress (stages, per-iteration updates),
* ``("result", {...})`` — success payload incl. metrics + report HTML,
* ``("error", {...})`` — a *deterministic* failure (bad workload,
  recovery exhausted); the runtime does not retry these, because the
  same inputs would fail the same way.

Crashes are deliberately *not* reported: an injected
:class:`~repro.faults.SimulatedCrash` hard-exits the process with
status 137, exactly like the OOM-killer would, and the parent's monitor
classifies any abnormal exit as a crash and applies the retry policy.
The ``serve.worker.*`` fault sites are fired by the *parent* at
dispatch (see :mod:`repro.serve.runtime`); the payload's ``_inject``
entry is how the armed fault reaches this process.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Any, Callable

from .. import telemetry
from ..cli import _fingerprints
from ..core import ComPLxConfig, ComPLxPlacer
from ..core.config import ResilienceConfig
from ..diagnostics import diagnose
from ..faults import FaultPlan, FaultSpec, SimulatedCrash, install
from ..legalize import abacus_legalize, tetris_legalize
from ..models import hpwl
from ..netlist import Netlist, Placement
from ..netlist.bookshelf import read_aux
from ..projection.grid import DensityGrid, default_grid_shape
from ..report import build_report, record_stage_totals, render_html
from ..resilience import legalize_with_fallback
from ..workloads import SyntheticSpec, generate, load_suite
from .jobs import JobSpec

__all__ = ["CRASH_EXIT_CODE", "build_netlist", "run_job", "worker_entry"]

logger = logging.getLogger(__name__)

#: Exit status of a simulated worker kill (mirrors 128 + SIGKILL).
CRASH_EXIT_CODE = 137

_LEGALIZERS = {"abacus": abacus_legalize, "tetris": tetris_legalize}


def build_netlist(workload: dict[str, Any],
                  aux_root: str | None = None) -> Netlist:
    """Materialize the netlist a workload descriptor names."""
    kind = workload["kind"]
    if kind == "suite":
        design = load_suite(workload["suite"],
                            scale=float(workload.get("scale", 1.0)))
        return design.netlist
    if kind == "synthetic":
        fields = {key: value for key, value in workload.items()
                  if key not in ("kind", "name")}
        spec = SyntheticSpec(name=workload.get("name", "adhoc"), **fields)
        return generate(spec).netlist
    if kind == "aux":
        if aux_root is None:
            raise ValueError("aux workloads are disabled on this server")
        path = os.path.normpath(os.path.join(aux_root, workload["path"]))
        if not path.startswith(os.path.abspath(aux_root) + os.sep) \
                and path != os.path.abspath(aux_root):
            path = os.path.abspath(path)
            root = os.path.abspath(aux_root)
            if not path.startswith(root + os.sep):
                raise ValueError("aux path escapes the configured root")
        netlist, _ = read_aux(path)
        return netlist
    raise ValueError(f"unknown workload kind {kind!r}")


def _install_injected_faults(inject: dict[str, Any] | None) -> None:
    """Arm the in-worker plan for a parent-dispatched fault."""
    if not inject:
        return
    if inject.get("mode") == "crash":
        # Die between iterations via the existing loop.kill site; the
        # SimulatedCrash is caught only by worker_entry's hard-exit.
        install(FaultPlan((
            FaultSpec("loop.kill", at=max(int(inject.get("at", 2)), 1)),
        )))
    elif inject.get("mode") == "hang":
        # Stall before any placement work so the parent's hard-kill
        # timeout is what reclaims the worker.
        time.sleep(float(inject.get("seconds", 3600.0)))


def _make_config(spec: JobSpec, tier: dict[str, Any]) -> ComPLxConfig:
    knobs: dict[str, Any] = {}
    if spec.effort is not None:
        from ..core.effort import effort_overrides
        knobs.update(effort_overrides(spec.effort))
    # Explicit config knobs win over the effort preset.
    knobs.update(spec.config)
    factor = float(tier.get("max_iterations_factor", 1.0))
    if factor < 1.0:
        base = int(knobs.get("max_iterations",
                             ComPLxConfig.max_iterations))
        knobs["max_iterations"] = max(int(base * factor), 1)
    knobs["resilience"] = ResilienceConfig(
        deadline_seconds=spec.deadline_seconds,
    )
    return ComPLxConfig(**knobs)


def _legalize(netlist: Netlist, placement: Placement,
              legalizer: str) -> tuple[Placement, str]:
    if legalizer == "none":
        return placement, "none"
    chain = [(legalizer, _LEGALIZERS[legalizer])]
    if legalizer != "tetris":
        chain.append(("tetris", tetris_legalize))
    return legalize_with_fallback(netlist, placement, chain)


def run_job(payload: dict[str, Any],
            emit: Callable[[dict[str, Any]], None],
            ship: Callable[[dict[str, Any]], None] | None = None,
            ) -> dict[str, Any]:
    """Run one attempt end to end; returns the result message body.

    ``ship`` receives incremental telemetry frames when (and only when)
    the payload carries a trace context — a payload from a runtime with
    tracing disabled lacks the ``"trace"`` entry, the rebuilt context is
    None, and this function allocates nothing telemetry-frame-related.
    """
    spec = JobSpec(**payload["spec"])
    tier = payload.get("tier", {})
    trace_ctx = telemetry.TraceContext.from_wire(payload.get("trace"))
    netlist = build_netlist(spec.workload, payload.get("aux_root"))
    emit({"stage": "loaded", "cells": netlist.num_cells,
          "nets": netlist.num_nets})

    config = _make_config(spec, tier)
    with telemetry.tracing() as tracer, telemetry.metrics() as registry:
        placer = ComPLxPlacer(netlist, config)

        shipper = None
        if trace_ctx is not None and ship is not None:
            shipper = telemetry.TelemetryShipper(trace_ctx, tracer,
                                                 registry)

        def progress(k: int, lower: Placement, upper: Placement) -> None:
            emit({"stage": "iteration", "iteration": k,
                  "hpwl_upper": float(hpwl(netlist, upper))})
            if shipper is not None:
                frame = shipper.flush_frame()
                if frame is not None:
                    ship(frame)

        result = placer.place(callback=progress)
        emit({"stage": "global_done",
              "iterations": result.history.iterations,
              "stop_reason": result.history.stop_reason})

        legalizer = tier.get("legalizer") or spec.legalizer
        final, used_legalizer = _legalize(netlist, result.upper, legalizer)
        emit({"stage": "legalized", "legalizer": used_legalizer})
        run_detailed = spec.detailed and not tier.get("skip_detailed")
        if run_detailed:
            from ..detailed import DetailedPlacer

            final = DetailedPlacer(
                netlist, legalizer=_LEGALIZERS.get(
                    used_legalizer, tetris_legalize),
            ).place(final)
            emit({"stage": "detailed_done"})

        registry.merge(result.metrics)
        registry.meta["netlist"] = netlist.name
        registry.meta["tenant"] = spec.tenant
        registry.meta["job_id"] = spec.job_id
        registry.meta.update(_fingerprints(netlist, placer))
        record_stage_totals(registry, tracer)

        resilience_report = result.extras.get("resilience") or {}
        recovery_events = resilience_report.get("events", [])
        bins = default_grid_shape(netlist.num_movable)
        grid = DensityGrid(netlist, bins, bins)
        density = grid.utilization(grid.usage(final), config.gamma)
        diagnosis = diagnose(registry, config=config,
                             recovery_events=recovery_events)
        emit({"stage": "doctor",
              "findings": [f.to_json() for f in diagnosis.findings]})
        if shipper is not None:
            frame = shipper.flush_frame(force=True)
            if frame is not None:
                ship(frame)
        report_html = render_html(build_report(
            registry,
            title=f"{spec.tenant}/{spec.name} ({spec.job_id})",
            diagnosis=diagnosis, density=density,
            recovery_events=recovery_events,
        ))

        body: dict[str, Any] = {
            "hpwl_legal": float(hpwl(netlist, final)),
            "hpwl_upper": float(hpwl(netlist, result.upper)),
            "iterations": result.history.iterations,
            "stop_reason": result.history.stop_reason,
            "legalizer": used_legalizer,
            "detailed": run_detailed,
            "netlist": {"name": netlist.name, "cells": netlist.num_cells,
                        "nets": netlist.num_nets},
            "recovery_events": recovery_events,
            "metrics": registry.to_dict(),
            "report_html": report_html,
        }
        if spec.include_placement:
            body["placement"] = {"x": [float(v) for v in final.x],
                                 "y": [float(v) for v in final.y]}
    return body


def worker_entry(payload: dict[str, Any], conn) -> None:
    """Process target: run one attempt, stream messages, exit."""
    try:
        _install_injected_faults(payload.get("_inject"))

        def emit(event: dict[str, Any]) -> None:
            conn.send(("event", event))

        def ship(frame: dict[str, Any]) -> None:
            conn.send(("telemetry", frame))

        body = run_job(payload, emit, ship)
        conn.send(("result", body))
        conn.close()
    except SimulatedCrash:
        # Mirror a SIGKILL: no cleanup, no goodbye on the pipe.
        os._exit(CRASH_EXIT_CODE)
    except Exception as exc:  # deterministic failure -> report, no retry
        logger.exception("job %s failed in worker",
                         payload.get("spec", {}).get("job_id"))
        try:
            conn.send(("error", {"type": type(exc).__name__,
                                 "message": str(exc)}))
            conn.close()
        except OSError:
            pass
