"""Job model: validated submissions and lock-guarded job records.

A :class:`JobSpec` is the immutable, validated form of one submission
payload; a :class:`JobRecord` is the service's mutable view of that job
as it moves through ``queued -> running -> {succeeded, failed,
cancelled}``.  Records are mutated from the dispatcher, per-job monitor
threads and HTTP handler threads, so every mutator holds the record's
lock and readers only ever see consistent snapshots.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Any

from ..core.effort import effort_preset
from .queue import BACKGROUND_PRIORITY

__all__ = [
    "CONFIG_OVERRIDES",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobValidationError",
    "TERMINAL_STATES",
]


class JobValidationError(ValueError):
    """A submission payload the service refuses (HTTP 400)."""


class JobState:
    """The job lifecycle states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED)

#: ComPLx config fields a submission may override, with validators.
CONFIG_OVERRIDES = {
    "max_iterations": int,
    "gamma": float,
    "seed": int,
    "net_model": str,
    "projection_method": str,
    "gap_tol": float,
    "gap_tolerance": float,
    "pi_tol_fraction": float,
    "lambda_init_ratio": float,
    "lambda_growth_cap": float,
    "lambda_h_factor": float,
    "lambda_mode": str,
    "refine_every": int,
    "cg_tol": float,
    "cg_max_iter": int,
    "init_sweeps": int,
}

_WORKLOAD_KINDS = ("suite", "synthetic", "aux")
_NAME_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")
_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,32}$")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobValidationError(message)


@dataclass(frozen=True)
class JobSpec:
    """One validated placement job.

    ``workload`` describes the netlist source (already validated):

    * ``{"kind": "suite", "suite": <registered name>, "scale": f}`` —
      a registered synthetic benchmark,
    * ``{"kind": "synthetic", "num_cells": n, "seed": s, ...}`` — an ad
      hoc synthetic design (extra keys go to ``SyntheticSpec``),
    * ``{"kind": "aux", "path": p}`` — a Bookshelf ``.aux`` on the
      server (only when the runtime was configured with an aux root).
    """

    job_id: str
    tenant: str
    name: str
    priority: int
    workload: dict[str, Any]
    config: dict[str, Any]
    legalizer: str
    detailed: bool
    deadline_seconds: float | None
    max_retries: int | None
    include_placement: bool
    #: Coloquinte-style effort preset (1..9); the worker expands it into
    #: config knobs, with explicit ``config`` entries winning.
    effort: int | None = None

    @classmethod
    def from_payload(
        cls,
        payload: dict[str, Any],
        job_id: str,
        default_tenant: str = "default",
    ) -> "JobSpec":
        """Validate one submission payload into a spec.

        Raises :class:`JobValidationError` with a client-appropriate
        message on anything malformed.
        """
        _require(isinstance(payload, dict), "payload must be a JSON object")
        known = {"tenant", "name", "priority", "workload", "config",
                 "legalizer", "detailed", "deadline_seconds",
                 "max_retries", "include_placement", "effort"}
        unknown = sorted(set(payload) - known)
        _require(not unknown, f"unknown field(s): {', '.join(unknown)}")

        tenant = payload.get("tenant", default_tenant)
        _require(isinstance(tenant, str) and bool(_TENANT_RE.match(tenant)),
                 "tenant must match [A-Za-z0-9._-]{1,32}")
        name = payload.get("name", "job")
        _require(isinstance(name, str) and bool(_NAME_RE.match(name)),
                 "name must match [A-Za-z0-9._-]{1,64}")
        priority = payload.get("priority", 5)
        _require(isinstance(priority, int) and not isinstance(priority, bool)
                 and 0 <= priority <= 2 * BACKGROUND_PRIORITY - 1,
                 f"priority must be an integer in "
                 f"[0, {2 * BACKGROUND_PRIORITY - 1}] (0 = most urgent; "
                 f">= {BACKGROUND_PRIORITY} is the background band)")

        workload = payload.get("workload")
        _require(isinstance(workload, dict), "workload object is required")
        kind = workload.get("kind")
        _require(kind in _WORKLOAD_KINDS,
                 f"workload.kind must be one of {', '.join(_WORKLOAD_KINDS)}")
        if kind == "suite":
            _require(isinstance(workload.get("suite"), str),
                     "workload.suite (a registered suite name) is required")
            scale = workload.get("scale", 1.0)
            _require(isinstance(scale, (int, float)) and 0 < scale <= 1,
                     "workload.scale must lie in (0, 1]")
        elif kind == "synthetic":
            cells = workload.get("num_cells")
            _require(isinstance(cells, int) and 2 <= cells <= 200_000,
                     "workload.num_cells must be an int in [2, 200000]")
        else:
            _require(isinstance(workload.get("path"), str),
                     "workload.path is required for kind aux")

        config = payload.get("config", {})
        _require(isinstance(config, dict), "config must be an object")
        clean_config: dict[str, Any] = {}
        for key, value in config.items():
            caster = CONFIG_OVERRIDES.get(key)
            _require(caster is not None,
                     f"config.{key} is not an overridable knob "
                     f"(allowed: {', '.join(sorted(CONFIG_OVERRIDES))})")
            try:
                clean_config[key] = caster(value)
            except (TypeError, ValueError):
                raise JobValidationError(
                    f"config.{key} must be a {caster.__name__}"
                ) from None

        effort = payload.get("effort")
        if effort is not None:
            _require(isinstance(effort, int)
                     and not isinstance(effort, bool) and 1 <= effort <= 9,
                     "effort must be an integer in [1, 9]")
        preset = effort_preset(effort) if effort is not None else None

        # Absent legalizer/detailed fall back to the effort preset's
        # flow choices; explicit values always win.
        legalizer = payload.get("legalizer")
        if legalizer is None:
            legalizer = preset.legalizer if preset is not None else "abacus"
        _require(legalizer in ("abacus", "tetris", "none"),
                 "legalizer must be abacus, tetris or none")
        detailed = payload.get("detailed")
        if detailed is None:
            detailed = preset.detailed if preset is not None else False
        _require(isinstance(detailed, bool), "detailed must be a boolean")

        deadline = payload.get("deadline_seconds")
        if deadline is not None:
            _require(isinstance(deadline, (int, float)) and deadline > 0,
                     "deadline_seconds must be a positive number")
            deadline = float(deadline)
        retries = payload.get("max_retries")
        if retries is not None:
            _require(isinstance(retries, int) and 0 <= retries <= 10,
                     "max_retries must be an int in [0, 10]")
        include_placement = payload.get("include_placement", False)
        _require(isinstance(include_placement, bool),
                 "include_placement must be a boolean")

        return cls(
            job_id=job_id, tenant=tenant, name=name, priority=priority,
            workload=dict(workload), config=clean_config,
            legalizer=legalizer, detailed=detailed,
            deadline_seconds=deadline, max_retries=retries,
            include_placement=include_placement, effort=effort,
        )


@dataclass
class JobRecord:
    """The service-side mutable state of one job (lock-guarded)."""

    spec: JobSpec
    keep_events: int = 2000
    state: str = JobState.QUEUED
    attempts: int = 0
    tier: str = "full"
    error: str | None = None
    result: dict[str, Any] | None = None
    report_html: str | None = None
    metrics: dict[str, Any] | None = None
    trace_doc: dict[str, Any] | None = None
    run_dir: str | None = None
    enqueued_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    recovery: list[dict[str, Any]] = field(default_factory=list)
    _events: list[dict[str, Any]] = field(default_factory=list, repr=False)
    _events_dropped: int = 0
    _cancel: threading.Event = field(default_factory=threading.Event,
                                     repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    # ------------------------------------------------------------------
    # mutation (all under the lock)
    # ------------------------------------------------------------------
    def add_event(self, event: dict[str, Any]) -> None:
        """Append one progress event (bounded; oldest dropped first)."""
        with self._lock:
            self._events.append(event)
            if len(self._events) > self.keep_events:
                drop = len(self._events) - self.keep_events
                del self._events[:drop]
                self._events_dropped += drop

    def record_recovery(self, entry: dict[str, Any]) -> None:
        """Append one service-level recovery action (attempt crash/retry)."""
        with self._lock:
            self.recovery.append(entry)

    def transition(self, state: str, *, error: str | None = None,
                   now: float | None = None) -> None:
        with self._lock:
            self.state = state
            if error is not None:
                self.error = error
            if state == JobState.RUNNING and self.started_at is None:
                self.started_at = now
            if state in TERMINAL_STATES:
                self.finished_at = now

    def start_attempt(self, tier: str, now: float) -> int:
        """Mark one worker attempt started; returns its 1-based ordinal."""
        with self._lock:
            self.attempts += 1
            self.tier = tier
            self.state = JobState.RUNNING
            if self.started_at is None:
                self.started_at = now
            return self.attempts

    def complete(self, result: dict[str, Any], report_html: str | None,
                 metrics: dict[str, Any] | None, now: float) -> None:
        with self._lock:
            self.result = result
            self.report_html = report_html
            self.metrics = metrics
            self.state = JobState.SUCCEEDED
            self.finished_at = now

    def set_run_dir(self, run_dir: str) -> None:
        with self._lock:
            self.run_dir = run_dir

    def set_trace(self, doc: dict[str, Any]) -> None:
        """Attach the merged Chrome-trace document (tracing runs only)."""
        with self._lock:
            self.trace_doc = doc

    def trace(self) -> dict[str, Any] | None:
        with self._lock:
            return self.trace_doc

    # ------------------------------------------------------------------
    # cancellation flag (Event is internally synchronized)
    # ------------------------------------------------------------------
    def request_cancel(self) -> None:
        self._cancel.set()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def wait_cancel(self, timeout: float) -> bool:
        """Sleep up to ``timeout`` seconds, waking early on cancel."""
        return self._cancel.wait(timeout)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        with self._lock:
            return self.state in TERMINAL_STATES

    def events_since(
        self, since: int,
    ) -> tuple[list[dict[str, Any]], int, int]:
        """Events with ordinal > ``since``.

        Returns ``(events, next_since, dropped)``.  Event ordinals are
        1-based and *stable*: the bounded buffer drops oldest-first, and
        ``dropped`` counts how many ordinals have been shed so far.  A
        client whose cursor ``since`` is below ``dropped`` has a gap of
        ``dropped - since`` events it can never fetch — the serving
        layer surfaces that as an explicit marker instead of silently
        resuming.
        """
        with self._lock:
            total = self._events_dropped + len(self._events)
            start = max(since - self._events_dropped, 0)
            return (list(self._events[start:]), total,
                    self._events_dropped)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready consistent view for the status endpoint."""
        with self._lock:
            doc: dict[str, Any] = {
                "job_id": self.spec.job_id,
                "tenant": self.spec.tenant,
                "name": self.spec.name,
                "priority": self.spec.priority,
                "state": self.state,
                "attempts": self.attempts,
                "tier": self.tier,
                "events": self._events_dropped + len(self._events),
                "events_dropped": self._events_dropped,
                "cancel_requested": self._cancel.is_set(),
            }
            if self.error is not None:
                doc["error"] = self.error
            if self.run_dir is not None:
                doc["run_dir"] = self.run_dir
            if self.recovery:
                doc["recovery"] = list(self.recovery)
            if self.started_at is not None and self.enqueued_at:
                doc["queue_wait_seconds"] = round(
                    self.started_at - self.enqueued_at, 6)
            if self.finished_at is not None and self.started_at is not None:
                doc["run_seconds"] = round(
                    self.finished_at - self.started_at, 6)
            return doc
