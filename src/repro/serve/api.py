"""The HTTP face of the service: a thin JSON layer over the runtime.

Stdlib-only (:mod:`http.server`), because the point of this repo's
service is the *runtime* semantics — crash isolation, backpressure,
degradation — not web framework ergonomics.  Endpoints:

================================  ======================================
``POST /v1/jobs``                 submit; 202 + job id, 400 invalid,
                                  429 + ``Retry-After`` (queue full or
                                  tenant rate limit), 503 draining
``GET /v1/jobs``                  list this tenant's jobs
``GET /v1/jobs/<id>``             status snapshot
``GET /v1/jobs/<id>/events``      progress events (``?since=N`` cursor);
                                  ``?stream=1`` upgrades to Server-Sent
                                  Events with ``Last-Event-ID`` resume
``GET /v1/jobs/<id>/result``      result body; 409 until terminal
``GET /v1/jobs/<id>/report``      the run's HTML report
``GET /v1/jobs/<id>/trace``       merged Chrome trace (tracing runs)
``DELETE /v1/jobs/<id>``          cancel (queued or running)
``GET /healthz``                  liveness: 200 while the process works
``GET /readyz``                   readiness: 200 only with queue headroom
``GET /metricz``                  service + fleet metrics; JSON by
                                  default, Prometheus text with
                                  ``?format=prom`` or an ``Accept:
                                  text/plain`` header
================================  ======================================

Event cursors are absolute ordinals: the bounded per-job buffer drops
oldest-first, and a client resuming below the drop watermark gets an
explicit gap marker (JSON: ``"gap"``; SSE: a ``gap`` event) instead of
a silent skip.

Tenancy rides on the ``X-Tenant`` header (or the payload's ``tenant``
field); a tenant only ever sees its own jobs.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..telemetry.prometheus import PROMETHEUS_CONTENT_TYPE, to_prometheus
from .config import ServeConfig
from .jobs import JobRecord, JobValidationError, TERMINAL_STATES
from .queue import QueueFull
from .runtime import JobRuntime, ServiceUnavailable
from .tenants import RateLimited

__all__ = ["PlacementService", "serve_forever"]

logger = logging.getLogger(__name__)

#: Submission bodies above this are refused outright (1 MiB).
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """One request; the runtime lives on ``self.server``."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def runtime(self) -> JobRuntime:
        return self.server.runtime  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, body: dict[str, Any],
                   headers: dict[str, str] | None = None) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_html(self, status: int, html: str) -> None:
        data = html.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8",
                   ) -> None:
        data = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    @staticmethod
    def _query_params(query: str) -> dict[str, str]:
        params: dict[str, str] = {}
        for chunk in query.split("&"):
            if not chunk:
                continue
            key, _, value = chunk.partition("=")
            params[key] = value
        return params

    def _error(self, status: int, message: str,
               retry_after: float | None = None) -> None:
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = str(max(int(round(retry_after)), 1))
        self._send_json(status, {"error": message}, headers)

    def _tenant(self) -> str:
        return self.headers.get("X-Tenant", "default")

    def _read_body(self) -> dict[str, Any] | None:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError:
            self._error(400, "request body is not valid JSON")
            return None
        if not isinstance(body, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return body

    def _owned_job(self, job_id: str) -> JobRecord | None:
        """The job, provided it exists and belongs to this tenant."""
        record = self.runtime.job(job_id)
        if record is None or record.spec.tenant != self._tenant():
            self._error(404, f"no such job {job_id!r}")
            return None
        return record

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/v1/jobs":
            self._error(404, "unknown endpoint")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            record = self.runtime.submit(body, tenant_hint=self._tenant())
        except JobValidationError as exc:
            self._error(400, str(exc))
        except RateLimited as exc:
            self._error(429, str(exc), retry_after=exc.retry_after)
        except QueueFull as exc:
            self._error(429, str(exc), retry_after=exc.retry_after)
        except ServiceUnavailable as exc:
            self._error(503, str(exc))
        else:
            self._send_json(202, record.snapshot())

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif path == "/readyz":
            if self.runtime.ready():
                self._send_json(200, {"status": "ready"})
            else:
                self._error(503, "draining" if self.runtime.draining
                            else "queue at capacity")
        elif path == "/metricz":
            registry = self.runtime.metrics_registry()
            params = self._query_params(query)
            accept = self.headers.get("Accept", "")
            wants_prom = params.get("format") == "prom" \
                or ("text/plain" in accept
                    and "application/json" not in accept)
            if wants_prom:
                self._send_text(200, to_prometheus(registry),
                                content_type=PROMETHEUS_CONTENT_TYPE)
            else:
                self._send_json(200, registry.to_dict())
        elif parts[:2] == ["v1", "jobs"] and len(parts) == 2:
            records = self.runtime.jobs(tenant=self._tenant())
            self._send_json(200, {"jobs": [r.snapshot() for r in records]})
        elif parts[:2] == ["v1", "jobs"] and len(parts) == 3:
            record = self._owned_job(parts[2])
            if record is not None:
                self._send_json(200, record.snapshot())
        elif parts[:2] == ["v1", "jobs"] and len(parts) == 4:
            record = self._owned_job(parts[2])
            if record is None:
                return
            if parts[3] == "events":
                params = self._query_params(query)
                since = 0
                if params.get("since", "").isdigit():
                    since = int(params["since"])
                last_id = self.headers.get("Last-Event-ID", "")
                if last_id.isdigit():
                    since = int(last_id)
                if params.get("stream") == "1":
                    self._stream_events(record, since)
                    return
                events, next_since, dropped = record.events_since(since)
                self._send_json(200, {"events": events,
                                      "next_since": next_since,
                                      "dropped": dropped,
                                      "gap": max(dropped - since, 0),
                                      "done": record.done})
            elif parts[3] == "result":
                self._job_result(record)
            elif parts[3] == "report":
                if record.report_html is None:
                    self._error(409, "no report (job not finished "
                                     "or it failed before reporting)")
                else:
                    self._send_html(200, record.report_html)
            elif parts[3] == "trace":
                trace = record.trace()
                if trace is None:
                    self._error(409, "no trace (tracing disabled or the "
                                     "job has not finished an attempt)")
                else:
                    self._send_json(200, trace)
            else:
                self._error(404, "unknown endpoint")
        else:
            self._error(404, "unknown endpoint")

    def _sse(self, event_id: int, event_type: str,
             body: dict[str, Any]) -> None:
        """Write one Server-Sent Event frame."""
        data = json.dumps(body)
        self.wfile.write(
            f"id: {event_id}\nevent: {event_type}\n"
            f"data: {data}\n\n".encode())

    def _stream_events(self, record: JobRecord, since: int) -> None:
        """``GET .../events?stream=1``: live Server-Sent Events.

        Event ids are the absolute event ordinals, so a client that
        reconnects with ``Last-Event-ID`` resumes exactly where it left
        off; if the bounded buffer already shed part of that range the
        stream opens with an explicit ``gap`` event.  The stream closes
        itself (a ``done`` event, then EOF) once the job is terminal.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        self.wfile.flush()
        cursor = since
        idle_polls = 0
        try:
            while True:
                events, next_since, dropped = record.events_since(cursor)
                if dropped > cursor:
                    self._sse(dropped, "gap",
                              {"missed": dropped - cursor,
                               "resume_at": dropped})
                    cursor = dropped
                for offset, event in enumerate(events):
                    self._sse(cursor + offset + 1, "progress", event)
                cursor = next_since
                if events:
                    idle_polls = 0
                    self.wfile.flush()
                if record.done:
                    self._sse(cursor, "done",
                              {"state": record.snapshot()["state"]})
                    self.wfile.flush()
                    return
                if not events:
                    idle_polls += 1
                    if idle_polls % 100 == 0:
                        # Comment heartbeat keeps proxies from timing
                        # the idle connection out.
                        self.wfile.write(b": keep-alive\n\n")
                        self.wfile.flush()
                time.sleep(0.05)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; nothing to clean up

    def _job_result(self, record: JobRecord) -> None:
        snapshot = record.snapshot()
        if snapshot["state"] not in TERMINAL_STATES:
            self._error(409, f"job is {snapshot['state']}; poll until "
                             "it reaches a terminal state")
            return
        body = {"status": snapshot["state"], "job": snapshot}
        if record.result is not None:
            body["result"] = record.result
        self._send_json(200, body)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        parts = [p for p in self.path.split("/") if p]
        if parts[:2] != ["v1", "jobs"] or len(parts) != 3:
            self._error(404, "unknown endpoint")
            return
        record = self._owned_job(parts[2])
        if record is None:
            return
        changed = self.runtime.cancel(record.spec.job_id)
        self._send_json(202 if changed else 200, record.snapshot())


class PlacementService:
    """The HTTP server plus its runtime, with a clean shutdown path."""

    def __init__(self, config: ServeConfig | None = None,
                 aux_root: str | None = None) -> None:
        self.config = config or ServeConfig()
        self.runtime = JobRuntime(self.config, aux_root=aux_root)
        self.httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.runtime = self.runtime  # type: ignore[attr-defined]
        self._state_lock = threading.Lock()
        self._serve_thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is concrete even for port 0."""
        return self.httpd.server_address[:2]

    def start(self) -> "PlacementService":
        """Run the accept loop on a background thread (tests, smoke)."""
        self.runtime.start()
        thread = threading.Thread(target=self.httpd.serve_forever,
                                  name="serve-http", daemon=True)
        with self._state_lock:
            self._serve_thread = thread
        thread.start()
        host, port = self.address
        logger.info("placement service listening on http://%s:%d",
                    host, port)
        return self

    def stop(self, drain: bool = True,
             timeout: float | None = None) -> None:
        """Stop accepting, optionally drain, then shut the socket down."""
        self.runtime.shutdown(drain=drain, timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        logger.info("placement service stopped")


def serve_forever(config: ServeConfig | None = None,
                  aux_root: str | None = None) -> None:
    """Blocking entry point used by ``python -m repro.serve``."""
    service = PlacementService(config, aux_root=aux_root)
    service.runtime.start()
    host, port = service.address
    logger.info("placement service listening on http://%s:%d", host, port)
    try:
        service.httpd.serve_forever()
    except KeyboardInterrupt:
        logger.info("interrupt: draining before shutdown")
    finally:
        service.stop(drain=True)
