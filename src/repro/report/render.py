"""Run report assembly and rendering.

A :class:`RunReport` bundles everything one placement run produced —
the metrics registry, the doctor's diagnosis, an optional density
snapshot and the recovery timeline — and renders to a *single
self-contained* HTML file (charts embedded as inline SVG, style
inlined, zero external references) or to Markdown for terminals and
PR comments.

The renderers are deterministic: content depends only on the inputs
(no wall-clock timestamps, dictionaries walked in sorted order), so a
fixed-seed run regenerates a byte-identical report.
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..diagnostics import Diagnosis
from ..telemetry import MetricsRegistry, Tracer
from ..viz import (
    bar_chart_svg_str,
    heatmap_svg_str,
    histogram_svg_str,
    line_chart_svg_str,
)

__all__ = [
    "RunReport",
    "build_report",
    "record_stage_totals",
    "render_html",
    "render_markdown",
    "write_report",
]

#: Convergence charts, in render order: (title, series names, log-y).
CHART_SPECS: tuple[tuple[str, tuple[str, ...], bool], ...] = (
    ("Objective bounds (weighted HPWL)", ("phi_lower", "phi_upper"), False),
    ("Lambda schedule", ("lam",), True),
    ("Pi: L1 distance to feasibility", ("pi",), True),
    ("Relative duality gap", ("duality_gap",), False),
    ("Density overflow (%)", ("overflow_percent",), False),
    ("CG iterations per solve", ("cg_solve_iterations",), False),
    ("CG residual history (last solve)", ("cg_last_residual_history",), True),
)

_SEVERITY_COLORS = {"info": "#1f77b4", "warning": "#b8860b",
                    "critical": "#d62728"}


def record_stage_totals(registry: MetricsRegistry, tracer: Tracer) -> None:
    """Fold the tracer's per-stage aggregate into stage gauges.

    Writes ``stage_<name>_total_s`` / ``stage_<name>_count`` gauges so
    stage-time bars survive into the metrics JSON and offline reports
    (``python -m repro.report``) can draw them without the trace file.
    """
    for name, stats in sorted(tracer.aggregate().items()):
        registry.gauge(f"stage_{name}_total_s").set(stats.total_s)
        registry.gauge(f"stage_{name}_count").set(float(stats.count))


@dataclass
class RunReport:
    """Everything the renderers need, already extracted."""

    title: str
    registry: MetricsRegistry
    diagnosis: Diagnosis | None = None
    density: np.ndarray | None = None  # utilization matrix (ny, nx)
    recovery_events: list[dict[str, Any]] = field(default_factory=list)
    fingerprints: dict[str, str] = field(default_factory=dict)


def build_report(
    registry: MetricsRegistry,
    title: str = "placement run",
    diagnosis: Diagnosis | None = None,
    density: np.ndarray | None = None,
    recovery_events: list[dict[str, Any]] | None = None,
    fingerprints: dict[str, str] | None = None,
) -> RunReport:
    """Assemble a :class:`RunReport`.

    ``recovery_events`` and ``fingerprints`` default to what the
    registry's meta carries (the CLI stashes the supervisor's event list
    as JSON under ``recovery_events`` and config/netlist digests under
    ``config_fingerprint``/``netlist_fingerprint``).
    """
    if recovery_events is None:
        encoded = registry.meta.get("recovery_events", "")
        recovery_events = json.loads(encoded) if encoded else []
    if fingerprints is None:
        fingerprints = {
            key: value for key, value in sorted(registry.meta.items())
            if key.endswith("fingerprint")
        }
    return RunReport(
        title=title,
        registry=registry,
        diagnosis=diagnosis,
        density=density,
        recovery_events=recovery_events,
        fingerprints=dict(fingerprints),
    )


# ----------------------------------------------------------------------
# shared extraction helpers
# ----------------------------------------------------------------------
def _charts(registry: MetricsRegistry) -> list[tuple[str, str]]:
    """(title, svg) pairs for every CHART_SPEC with recorded data."""
    out = []
    for title, names, logy in CHART_SPECS:
        present = {
            name: registry.series(name).as_array()
            for name in names
            if registry.has_series(name) and len(registry.series(name)) >= 2
        }
        if not present:
            continue
        first = names[0] if names[0] in present else next(iter(present))
        x = registry.series(first).iteration_array().astype(np.float64)
        out.append((title, line_chart_svg_str(
            present, title=title, width=560, height=300, logy=logy,
            x_values=x)))
    return out


def _stage_bars(registry: MetricsRegistry) -> str | None:
    """Stage-time bar chart from the ``stage_*_total_s`` gauges."""
    totals = []
    gauges = registry.gauges()
    for name in sorted(gauges):
        if name.startswith("stage_") and name.endswith("_total_s"):
            stage = name[len("stage_"):-len("_total_s")]
            totals.append((stage, gauges[name]))
    if not totals:
        return None
    totals.sort(key=lambda item: -item[1])
    totals = totals[:12]
    labels = [name for name, _ in totals]
    values = np.asarray([seconds for _, seconds in totals])
    return bar_chart_svg_str(labels, values, title="Stage wall time "
                             "(inclusive)", unit=" s")


def _displacement_histograms(registry: MetricsRegistry) \
        -> list[tuple[str, str]]:
    out = []
    gauges = registry.gauges()
    for name in sorted(registry.series_names()):
        if not name.endswith("_displacement_hist"):
            continue
        algorithm = name[len("legalize_"):-len("_displacement_hist")]
        counts = registry.series(name).as_array()
        lo = gauges.get(f"legalize_{algorithm}_hist_lo_um", 0.0)
        hi = gauges.get(f"legalize_{algorithm}_hist_hi_um", 0.0)
        out.append((algorithm, histogram_svg_str(
            counts, lo, hi, title=f"Legalizer displacement ({algorithm})",
            unit=" um")))
    return out


def _scalar_rows(values: dict[str, float]) -> list[tuple[str, str]]:
    return [(name, f"{value:.6g}") for name, value in sorted(values.items())]


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------
_CSS = """
body { font-family: sans-serif; margin: 2em auto; max-width: 1200px;
       color: #222; }
h1 { border-bottom: 2px solid #1f77b4; padding-bottom: 0.2em; }
h2 { margin-top: 1.6em; color: #1f77b4; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.7em; text-align: left;
         font-size: 0.9em; }
th { background: #f0f4f8; }
.charts { display: flex; flex-wrap: wrap; gap: 1em; }
.charts figure { margin: 0; }
.finding { border-left: 4px solid; padding: 0.4em 0.8em; margin: 0.6em 0;
           background: #fafafa; }
.finding ul { margin: 0.3em 0 0 0; }
.ok { color: #2ca02c; font-weight: bold; }
code { background: #f0f0f0; padding: 0 0.25em; }
"""


def render_html(report: RunReport) -> str:
    """The single-file HTML report."""
    registry = report.registry
    esc = html.escape
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(report.title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{esc(report.title)}</h1>",
    ]

    # --- run summary ------------------------------------------------
    meta = {k: v for k, v in sorted(registry.meta.items())
            if k != "recovery_events"}
    if meta or report.fingerprints:
        parts.append("<h2>Run</h2><table>")
        for key, value in sorted({**meta, **report.fingerprints}.items()):
            parts.append(f"<tr><th>{esc(key)}</th>"
                         f"<td><code>{esc(str(value))}</code></td></tr>")
        parts.append("</table>")

    # --- doctor -----------------------------------------------------
    if report.diagnosis is not None:
        parts.append("<h2>Convergence doctor</h2>")
        if report.diagnosis.ok:
            checked = ", ".join(report.diagnosis.rules_checked)
            parts.append(f'<p class="ok">No findings '
                         f"({len(report.diagnosis.rules_checked)} detectors "
                         f"checked: {esc(checked)}).</p>")
        for finding in (report.diagnosis.findings if report.diagnosis
                        else []):
            color = _SEVERITY_COLORS.get(finding.severity, "#888")
            where = ""
            if finding.iteration_range is not None:
                lo, hi = finding.iteration_range
                where = f" <em>[iterations {lo}&ndash;{hi}]</em>"
            parts.append(
                f'<div class="finding" style="border-color:{color}">'
                f"<strong>{esc(finding.severity.upper())} "
                f"{esc(finding.rule)} {esc(finding.name)}</strong>: "
                f"{esc(finding.summary)}{where}")
            if finding.suggestions:
                parts.append("<ul>")
                parts.extend(f"<li>try: {esc(s)}</li>"
                             for s in finding.suggestions)
                parts.append("</ul>")
            parts.append("</div>")

    # --- convergence charts -----------------------------------------
    charts = _charts(registry)
    if charts:
        parts.append('<h2>Convergence</h2><div class="charts">')
        parts.extend(f"<figure>{svg}</figure>" for _, svg in charts)
        parts.append("</div>")

    # --- stages and memory ------------------------------------------
    bars = _stage_bars(registry)
    if bars:
        parts.append(f"<h2>Stage timing</h2>{bars}")
    mem_rows = [(name, value) for name, value in
                sorted(registry.gauges().items())
                if name.startswith("mem_")]
    if mem_rows:
        parts.append("<h2>Memory</h2><table><tr><th>gauge</th>"
                     "<th>MiB</th></tr>")
        parts.extend(f"<tr><td>{esc(name)}</td><td>{value:.1f}</td></tr>"
                     for name, value in mem_rows)
        parts.append("</table>")

    # --- density heatmap --------------------------------------------
    if report.density is not None:
        parts.append("<h2>Density utilization</h2>")
        parts.append(heatmap_svg_str(
            report.density, title="bin utilization (red = over target)",
            vmax=max(1.0, float(np.max(report.density)))))

    # --- displacement histograms ------------------------------------
    histograms = _displacement_histograms(registry)
    if histograms:
        parts.append('<h2>Legalization</h2><div class="charts">')
        parts.extend(f"<figure>{svg}</figure>" for _, svg in histograms)
        parts.append("</div>")

    # --- recovery timeline ------------------------------------------
    if report.recovery_events:
        parts.append("<h2>Recovery timeline</h2><table>"
                     "<tr><th>#</th><th>iteration</th><th>fault</th>"
                     "<th>action</th><th>detail</th></tr>")
        for i, event in enumerate(report.recovery_events):
            parts.append(
                f"<tr><td>{i}</td>"
                f"<td>{esc(str(event.get('iteration', '')))}</td>"
                f"<td>{esc(str(event.get('fault', '')))}</td>"
                f"<td>{esc(str(event.get('action', '')))}</td>"
                f"<td>{esc(str(event.get('detail', '')))}</td></tr>")
        parts.append("</table>")

    # --- raw scalars ------------------------------------------------
    for heading, values in (("Counters", registry.counters()),
                            ("Gauges", registry.gauges())):
        if not values:
            continue
        parts.append(f"<h2>{heading}</h2><table><tr><th>name</th>"
                     "<th>value</th></tr>")
        parts.extend(f"<tr><td>{esc(name)}</td><td>{text}</td></tr>"
                     for name, text in _scalar_rows(values))
        parts.append("</table>")

    parts.append("</body></html>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def render_markdown(report: RunReport) -> str:
    """Markdown digest (no charts) for terminals and PR comments."""
    registry = report.registry
    lines = [f"# {report.title}", ""]
    meta = {k: v for k, v in sorted(registry.meta.items())
            if k != "recovery_events"}
    combined = {**meta, **report.fingerprints}
    if combined:
        lines += ["| key | value |", "| --- | --- |"]
        lines += [f"| {k} | `{v}` |" for k, v in sorted(combined.items())]
        lines.append("")
    if report.diagnosis is not None:
        lines.append("## Convergence doctor")
        lines.append("")
        if report.diagnosis.ok:
            lines.append("No findings.")
        else:
            for finding in report.diagnosis.findings:
                lines.append(f"- **{finding.severity.upper()} "
                             f"{finding.rule} {finding.name}**: "
                             f"{finding.summary}")
                lines.extend(f"    - try: {s}" for s in finding.suggestions)
        lines.append("")
    final_rows = []
    for name in registry.series_names():
        series = registry.series(name)
        if len(series) and not name.endswith("_hist"):
            final_rows.append((name, len(series), series.last))
    if final_rows:
        lines += ["## Series finals", "", "| series | points | final |",
                  "| --- | ---: | ---: |"]
        lines += [f"| {name} | {count} | {value:.6g} |"
                  for name, count, value in sorted(final_rows)]
        lines.append("")
    for heading, values in (("Counters", registry.counters()),
                            ("Gauges", registry.gauges())):
        if not values:
            continue
        lines += [f"## {heading}", "", "| name | value |", "| --- | ---: |"]
        lines += [f"| {name} | {text} |"
                  for name, text in _scalar_rows(values)]
        lines.append("")
    if report.recovery_events:
        lines += ["## Recovery timeline", ""]
        lines += [f"- iteration {event.get('iteration', '?')}: "
                  f"{event.get('fault', '?')} -> "
                  f"{event.get('action', '?')}"
                  for event in report.recovery_events]
        lines.append("")
    return "\n".join(lines)


def write_report(path: str, report: RunReport) -> str:
    """Write the report; ``.md``/``.markdown`` renders Markdown,
    anything else the single-file HTML."""
    lower = path.lower()
    if lower.endswith((".md", ".markdown")):
        document = render_markdown(report)
    else:
        document = render_html(report)
    with open(path, "w") as handle:
        handle.write(document)
    return path
