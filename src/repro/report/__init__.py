"""Self-contained run reports: one HTML (or Markdown) file per run.

The report bundles what the flight recorder captured — convergence
curves, stage-time bars, the density heatmap, displacement histograms,
the convergence doctor's findings, fingerprints and the recovery
timeline — into a single file with every chart embedded as inline SVG
(rendered by :mod:`repro.viz`; no matplotlib, no external assets).

In-process::

    from repro.diagnostics import diagnose
    from repro.report import build_report, write_report

    report = build_report(result.metrics, title="my run",
                          diagnosis=diagnose(result.metrics, config=config))
    write_report("run.html", report)

Offline, from a saved ``--metrics-json`` file::

    python -m repro.report run.metrics.json --out run.html

The ``place``/``analyze`` CLI wires this up via ``--report PATH``.
"""

from .render import (
    RunReport,
    build_report,
    record_stage_totals,
    render_html,
    render_markdown,
    write_report,
)

__all__ = [
    "RunReport",
    "build_report",
    "record_stage_totals",
    "render_html",
    "render_markdown",
    "write_report",
]
