"""Offline report generation: ``python -m repro.report``.

Rebuilds a run report from a saved metrics file (``place
--metrics-json`` output, JSON or JSONL) without re-running the placer.
The doctor runs over the saved trajectories; charts that need
in-process state (the density heatmap) are simply omitted.
"""

from __future__ import annotations

import argparse
import sys

from ..diagnostics import diagnose
from ..telemetry import MetricsRegistry
from .render import build_report, write_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="render a run report from a saved metrics file",
    )
    parser.add_argument("metrics", help="metrics JSON/JSONL file "
                        "(from place --metrics-json)")
    parser.add_argument("--out", default="report.html",
                        help="output path; .md renders Markdown, "
                        "anything else single-file HTML "
                        "(default: %(default)s)")
    parser.add_argument("--title", default=None,
                        help="report title (default: derived from meta)")
    parser.add_argument("--no-doctor", action="store_true",
                        help="skip the convergence doctor section")
    args = parser.parse_args(argv)

    try:
        if args.metrics.endswith(".jsonl"):
            registry = MetricsRegistry.read_jsonl(args.metrics)
        else:
            import json

            with open(args.metrics) as handle:
                registry = MetricsRegistry.from_dict(json.load(handle))
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load {args.metrics}: {exc}", file=sys.stderr)
        return 2

    title = args.title
    if title is None:
        netlist = registry.meta.get("netlist", "")
        title = f"placement run: {netlist}" if netlist else "placement run"
    diagnosis = None if args.no_doctor else diagnose(registry)
    report = build_report(registry, title=title, diagnosis=diagnosis)
    path = write_report(args.out, report)
    print(f"wrote {path}")
    if diagnosis is not None and not diagnosis.ok:
        print(diagnosis.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
