"""ComPLx reproduction: primal-dual Lagrange global placement.

Reproduction of M.-C. Kim and I. L. Markov, "ComPLx: A Competitive
Primal-dual Lagrange Optimization for Global Placement", DAC 2012.

Quickstart::

    from repro import load_suite, place, hpwl

    design = load_suite("adaptec1_s", scale=0.1)
    result = place(design.netlist)
    print(hpwl(design.netlist, result.upper), result.iterations)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
table/figure reproductions.
"""

import logging as _logging

# Library convention: modules log through ``logging.getLogger(__name__)``
# and stay silent unless the application configures handlers (e.g. the
# CLI's ``--verbose``).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from .core import (
    ComPLxConfig,
    ComPLxPlacer,
    GlobalPlacementResult,
    default_config,
    dp_every_iteration_config,
    finest_grid_config,
    place,
    simpl_config,
)
from .models import hpwl, per_net_hpwl, weighted_hpwl
from .netlist import (
    CellKind,
    CoreArea,
    Netlist,
    NetlistBuilder,
    Placement,
    Rect,
    check_legal,
)
from .projection import DensityGrid, FeasibilityProjection
from .workloads import load_suite, suite_names

__version__ = "1.0.0"

__all__ = [
    "CellKind",
    "ComPLxConfig",
    "ComPLxPlacer",
    "CoreArea",
    "DensityGrid",
    "FeasibilityProjection",
    "GlobalPlacementResult",
    "Netlist",
    "NetlistBuilder",
    "Placement",
    "Rect",
    "check_legal",
    "default_config",
    "dp_every_iteration_config",
    "finest_grid_config",
    "hpwl",
    "load_suite",
    "per_net_hpwl",
    "place",
    "simpl_config",
    "suite_names",
    "weighted_hpwl",
]
