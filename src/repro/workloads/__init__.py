"""Synthetic workloads: generator, ISPD-style suites and scenarios."""

from .scenarios import clustered_cells, region_scenario, weighted_paths_scenario
from .suites import (
    ISPD2005,
    ISPD2006,
    SuiteEntry,
    load_suite,
    suite_entry,
    suite_names,
)
from .synthetic import (
    DEGREE_CHOICES,
    DEGREE_WEIGHTS,
    SyntheticDesign,
    SyntheticSpec,
    generate,
)

__all__ = [
    "DEGREE_CHOICES",
    "clustered_cells",
    "region_scenario",
    "weighted_paths_scenario",
    "DEGREE_WEIGHTS",
    "ISPD2005",
    "ISPD2006",
    "SuiteEntry",
    "SyntheticDesign",
    "SyntheticSpec",
    "generate",
    "load_suite",
    "suite_entry",
    "suite_names",
]
