"""Synthetic Bookshelf-style netlist generation.

The ISPD 2005/2006 contest benchmarks are not redistributable and their
full sizes (0.2M-2.5M cells) are intractable for a pure-Python placer, so
the reproduction generates synthetic designs with the same *structure*
(see DESIGN.md, "Substitutions"):

* a row-based core sized for a chosen utilization,
* standard cells with a realistic width distribution,
* optional fixed macros (ISPD 2005 style) and movable macros (2006 style)
  with large pin offsets,
* fixed I/O pads on the periphery,
* nets drawn around *golden* cell locations: each net connects cells that
  are near each other in a hidden reference layout, with degree
  distribution dominated by 2-3 pin nets plus a heavy tail — this gives
  the locality structure (Rent-rule-like) that makes wirelength
  optimization meaningful, and a known-good HPWL scale to sanity-check
  placers against.

Generation is fully deterministic given the spec's ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import cKDTree

from ..netlist import CellKind, CoreArea, Netlist, NetlistBuilder, Rect

#: Net-degree distribution approximating ISPD designs: mostly 2-3 pin
#: nets, a tail of wider nets.
DEGREE_CHOICES = np.array([2, 3, 4, 5, 6, 8, 12, 20])
DEGREE_WEIGHTS = np.array([0.55, 0.2, 0.1, 0.05, 0.04, 0.03, 0.02, 0.01])


@dataclass
class SyntheticSpec:
    """Parameters of one synthetic design."""

    name: str
    num_cells: int
    num_pads: int = 64
    num_fixed_macros: int = 0
    num_movable_macros: int = 0
    nets_per_cell: float = 1.1
    utilization: float = 0.7     # movable area / core area (core sizing)
    target_density: float = 1.0  # the gamma the design should be placed at
    row_height: float = 1.0
    site_width: float = 1.0
    macro_rows: tuple[int, int] = (8, 24)    # macro height range in rows
    locality: float = 0.08       # net radius as a fraction of the core side
    global_net_fraction: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_cells < 2:
            raise ValueError("need at least two cells")
        if not 0 < self.utilization <= 1:
            raise ValueError("utilization must be in (0, 1]")
        if not 0 < self.target_density <= 1:
            raise ValueError("target_density must be in (0, 1]")


@dataclass
class SyntheticDesign:
    """A generated netlist plus its golden (reference) placement."""

    netlist: Netlist
    golden_x: np.ndarray
    golden_y: np.ndarray
    spec: SyntheticSpec = field(repr=False, default=None)


def generate(spec: SyntheticSpec) -> SyntheticDesign:
    """Generate a synthetic design from a spec."""
    rng = np.random.default_rng(spec.seed)
    row_h = spec.row_height

    # ---------------- cell dimensions ----------------
    n = spec.num_cells
    widths = rng.integers(1, 9, size=n).astype(np.float64) * spec.site_width
    heights = np.full(n, row_h)

    macro_sizes: list[tuple[float, float]] = []
    total_macros = spec.num_fixed_macros + spec.num_movable_macros
    for _ in range(total_macros):
        rows = rng.integers(spec.macro_rows[0], spec.macro_rows[1] + 1)
        aspect = rng.uniform(0.6, 1.8)
        macro_sizes.append((rows * row_h * aspect, rows * row_h))

    std_area = float((widths * heights).sum())
    macro_area = float(sum(w * h for w, h in macro_sizes))
    core_side = float(np.sqrt((std_area + macro_area) / spec.utilization))
    num_rows = max(8, int(round(core_side / row_h)))
    core_side = num_rows * row_h
    core = CoreArea.uniform(
        Rect(0.0, 0.0, core_side, core_side), row_height=row_h,
        site_width=spec.site_width,
    )

    builder = NetlistBuilder(spec.name, core=core)

    # ---------------- macros first (fixed macros shape the golden layout)
    macro_positions = _scatter_macros(rng, macro_sizes, core_side)
    macro_names: list[str] = []
    for m, ((mw, mh), (mx, my)) in enumerate(zip(macro_sizes, macro_positions)):
        fixed = m < spec.num_fixed_macros
        name = f"macro{m}"
        macro_names.append(name)
        builder.add_cell(
            name, mw, mh, kind=CellKind.MACRO,
            fixed_at=(mx, my) if fixed else None,
        )

    # ---------------- golden standard-cell locations ----------------
    golden = _golden_locations(rng, n, core_side, macro_sizes, macro_positions,
                               spec.num_fixed_macros)
    for i in range(n):
        builder.add_cell(f"c{i}", widths[i], heights[i])

    # ---------------- pads on the periphery ----------------
    pad_names: list[str] = []
    for p in range(spec.num_pads):
        side = p % 4
        t = rng.uniform(0.05, 0.95) * core_side
        pos = {
            0: (t, 0.0), 1: (t, core_side), 2: (0.0, t), 3: (core_side, t),
        }[side]
        name = f"pad{p}"
        pad_names.append(name)
        builder.add_cell(name, 0.0, 0.0, kind=CellKind.TERMINAL, fixed_at=pos)

    # ---------------- nets around golden locations ----------------
    _generate_nets(rng, spec, builder, golden, core_side, macro_names,
                   macro_positions, pad_names)

    netlist = builder.build()
    golden_with_macros_x = np.zeros(netlist.num_cells)
    golden_with_macros_y = np.zeros(netlist.num_cells)
    for m, (mx, my) in enumerate(macro_positions):
        golden_with_macros_x[m] = mx
        golden_with_macros_y[m] = my
    offset = total_macros
    golden_with_macros_x[offset:offset + n] = golden[:, 0]
    golden_with_macros_y[offset:offset + n] = golden[:, 1]
    return SyntheticDesign(netlist, golden_with_macros_x, golden_with_macros_y,
                           spec=spec)


def _scatter_macros(
    rng: np.random.Generator,
    macro_sizes: list[tuple[float, float]],
    core_side: float,
) -> list[tuple[float, float]]:
    """Macro centers, greedily separated to avoid heavy initial overlap."""
    positions: list[tuple[float, float]] = []
    for mw, mh in macro_sizes:
        best = None
        best_clearance = -np.inf
        for _ in range(32):
            x = rng.uniform(0.5 * mw, core_side - 0.5 * mw) if mw < core_side else core_side / 2
            y = rng.uniform(0.5 * mh, core_side - 0.5 * mh) if mh < core_side else core_side / 2
            clearance = min(
                (abs(x - px) + abs(y - py) for px, py in positions),
                default=np.inf,
            )
            if clearance > best_clearance:
                best_clearance = clearance
                best = (x, y)
        positions.append(best)
    return positions


def _golden_locations(
    rng: np.random.Generator,
    n: int,
    core_side: float,
    macro_sizes: list[tuple[float, float]],
    macro_positions: list[tuple[float, float]],
    num_fixed: int,
) -> np.ndarray:
    """Reference standard-cell locations avoiding fixed-macro footprints."""
    golden = rng.uniform(0.0, core_side, size=(n, 2))
    for (mw, mh), (mx, my) in zip(macro_sizes[:num_fixed],
                                  macro_positions[:num_fixed]):
        inside = (
            (np.abs(golden[:, 0] - mx) < 0.5 * mw)
            & (np.abs(golden[:, 1] - my) < 0.5 * mh)
        )
        # Push escapees to the nearest macro edge (plus a small margin).
        for i in np.flatnonzero(inside):
            dx = golden[i, 0] - mx
            dy = golden[i, 1] - my
            if abs(dx) / max(mw, 1e-9) > abs(dy) / max(mh, 1e-9):
                golden[i, 0] = mx + np.sign(dx or 1.0) * (0.5 * mw + 1.0)
            else:
                golden[i, 1] = my + np.sign(dy or 1.0) * (0.5 * mh + 1.0)
        np.clip(golden, 0.0, core_side, out=golden)
    return golden


def _generate_nets(
    rng: np.random.Generator,
    spec: SyntheticSpec,
    builder: NetlistBuilder,
    golden: np.ndarray,
    core_side: float,
    macro_names: list[str],
    macro_positions: list[tuple[float, float]],
    pad_names: list[str],
) -> None:
    n = spec.num_cells
    tree = cKDTree(golden)
    num_nets = max(1, int(round(spec.nets_per_cell * n)))
    # Seeds: a random permutation first (so every cell appears), then
    # uniformly random extras.
    perm = rng.permutation(n)
    extra = rng.integers(0, n, size=max(num_nets - n, 0))
    seeds = np.concatenate([perm, extra])[:num_nets]
    degrees = rng.choice(DEGREE_CHOICES, size=num_nets, p=DEGREE_WEIGHTS)
    radius = spec.locality * core_side

    # Pre-draw which nets are "global" (long-range) and which touch pads
    # or macros.
    is_global = rng.random(num_nets) < spec.global_net_fraction
    touches_pad = rng.random(num_nets) < min(
        1.5 * len(pad_names) / max(num_nets, 1), 0.3
    )
    touches_macro = (
        rng.random(num_nets) < min(8.0 * len(macro_names) / max(num_nets, 1), 0.35)
        if macro_names else np.zeros(num_nets, dtype=bool)
    )

    for e in range(num_nets):
        seed = int(seeds[e])
        d = int(degrees[e])
        if is_global[e]:
            members = rng.integers(0, n, size=d)
        else:
            # Nearest golden neighbours within a radius-limited pool.
            k = min(max(4 * d, 16), n)
            _, idx = tree.query(golden[seed], k=k)
            idx = np.atleast_1d(idx)
            near = idx[
                np.abs(golden[idx] - golden[seed]).sum(axis=1) <= 2.0 * radius
            ]
            pool = near if near.size >= d else idx
            members = rng.choice(pool, size=min(d, pool.size), replace=False)
        members = np.unique(members)
        if members.size < 2 and not (touches_pad[e] or touches_macro[e]):
            members = np.unique(np.append(members, (seed + 1) % n))

        pins: list[tuple[str, float, float]] = []
        for c in members:
            w = builder._cells[len(macro_names) + int(c)].width
            dx = rng.uniform(-0.4, 0.4) * w
            pins.append((f"c{int(c)}", float(dx), 0.0))
        if touches_macro[e] and macro_names:
            # Attach to the macro nearest the seed's golden location.
            dists = [
                abs(golden[seed, 0] - mx) + abs(golden[seed, 1] - my)
                for mx, my in macro_positions
            ]
            m = int(np.argmin(dists))
            mw, mh = builder._cells[m].width, builder._cells[m].height
            pins.append(
                (macro_names[m],
                 float(rng.uniform(-0.45, 0.45) * mw),
                 float(rng.uniform(-0.45, 0.45) * mh))
            )
        if touches_pad[e] and pad_names:
            pins.append((pad_names[int(rng.integers(0, len(pad_names)))], 0.0, 0.0))
        if len(pins) < 2:
            continue
        builder.add_net(f"n{e}", pins, driver=int(rng.integers(0, len(pins))))
