"""Registry of ISPD-2005/2006-style synthetic benchmark suites.

Sizes are the official contest module counts scaled by 1/100 so a pure
Python placer finishes in seconds-to-minutes per design; `scale` rescales
further.  The 2006 suites carry the official target densities (Table 2 of
the paper) and movable macros; 2005 suites have fixed macros only and are
placed at gamma = 1.

The registry is what every table/figure experiment iterates over, so the
mapping from paper benchmark to synthetic stand-in lives in exactly one
place.
"""

from __future__ import annotations

from dataclasses import dataclass

from .synthetic import SyntheticDesign, SyntheticSpec, generate


@dataclass(frozen=True)
class SuiteEntry:
    """One benchmark in the registry."""

    name: str
    paper_name: str
    num_cells: int           # 1/100 of the contest module count
    num_fixed_macros: int
    num_movable_macros: int
    target_density: float
    utilization: float
    family: str              # "ispd2005" | "ispd2006"
    seed: int


ISPD2005 = [
    SuiteEntry("adaptec1_s", "ADAPTEC1", 2110, 6, 0, 1.0, 0.65, "ispd2005", 101),
    SuiteEntry("adaptec2_s", "ADAPTEC2", 2550, 8, 0, 1.0, 0.60, "ispd2005", 102),
    SuiteEntry("adaptec3_s", "ADAPTEC3", 4520, 10, 0, 1.0, 0.55, "ispd2005", 103),
    SuiteEntry("adaptec4_s", "ADAPTEC4", 4960, 10, 0, 1.0, 0.50, "ispd2005", 104),
    SuiteEntry("bigblue1_s", "BIGBLUE1", 2780, 6, 0, 1.0, 0.60, "ispd2005", 105),
    SuiteEntry("bigblue2_s", "BIGBLUE2", 5580, 12, 0, 1.0, 0.55, "ispd2005", 106),
    SuiteEntry("bigblue3_s", "BIGBLUE3", 11000, 14, 0, 1.0, 0.55, "ispd2005", 107),
    SuiteEntry("bigblue4_s", "BIGBLUE4", 21800, 16, 0, 1.0, 0.50, "ispd2005", 108),
]

ISPD2006 = [
    SuiteEntry("adaptec5_s", "ADAPTEC5", 8430, 4, 8, 0.5, 0.45, "ispd2006", 201),
    SuiteEntry("newblue1_s", "NEWBLUE1", 3300, 2, 6, 0.8, 0.60, "ispd2006", 202),
    SuiteEntry("newblue2_s", "NEWBLUE2", 4410, 2, 8, 0.9, 0.60, "ispd2006", 203),
    SuiteEntry("newblue3_s", "NEWBLUE3", 4940, 2, 6, 0.8, 0.55, "ispd2006", 204),
    SuiteEntry("newblue4_s", "NEWBLUE4", 6460, 2, 8, 0.5, 0.45, "ispd2006", 205),
    SuiteEntry("newblue5_s", "NEWBLUE5", 12300, 4, 10, 0.5, 0.45, "ispd2006", 206),
    SuiteEntry("newblue6_s", "NEWBLUE6", 12500, 4, 10, 0.8, 0.55, "ispd2006", 207),
    SuiteEntry("newblue7_s", "NEWBLUE7", 24500, 4, 12, 0.8, 0.55, "ispd2006", 208),
]

_REGISTRY = {entry.name: entry for entry in ISPD2005 + ISPD2006}


def suite_names(family: str | None = None) -> list[str]:
    """Names of all registered suites, optionally filtered by family."""
    entries = ISPD2005 + ISPD2006
    if family is not None:
        entries = [e for e in entries if e.family == family]
    return [e.name for e in entries]


def suite_entry(name: str) -> SuiteEntry:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown suite {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def load_suite(name: str, scale: float = 1.0) -> SyntheticDesign:
    """Generate the named synthetic benchmark (deterministic).

    ``scale`` multiplies the cell count (e.g. 0.1 for quick tests);
    macro counts shrink with the square root of the scale so mixed-size
    behaviour survives downscaling.
    """
    entry = suite_entry(name)
    if scale <= 0:
        raise ValueError("scale must be positive")
    macro_scale = max(scale, 0.05) ** 0.5
    spec = SyntheticSpec(
        name=entry.name,
        num_cells=max(int(entry.num_cells * scale), 50),
        num_fixed_macros=max(int(round(entry.num_fixed_macros * macro_scale)),
                             1 if entry.num_fixed_macros else 0),
        num_movable_macros=max(int(round(entry.num_movable_macros * macro_scale)),
                               1 if entry.num_movable_macros else 0),
        target_density=entry.target_density,
        utilization=entry.utilization,
        num_pads=max(int(64 * macro_scale), 16),
        seed=entry.seed,
    )
    return generate(spec)
