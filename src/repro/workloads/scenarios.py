"""Scenario builders: derived workloads for the extension experiments.

The Figure 4 (region constraints) and Figure 5 (timing-driven net
weighting) experiments derive their scenarios from a placed design;
these builders expose that logic as reusable API so users can set up the
same studies on their own netlists.
"""

from __future__ import annotations

import copy

import numpy as np

from ..netlist import Netlist, Placement, PlacementRegion, Rect


def clustered_cells(
    netlist: Netlist,
    placement: Placement,
    count: int = 50,
    seed: int = 0,
) -> np.ndarray:
    """A batch of movable standard cells near a random seed cell."""
    rng = np.random.default_rng(seed)
    std = np.flatnonzero(netlist.movable & ~netlist.is_macro)
    if std.size == 0:
        raise ValueError("netlist has no movable standard cells")
    anchor = std[rng.integers(0, std.size)]
    d = (
        np.abs(placement.x[std] - placement.x[anchor])
        + np.abs(placement.y[std] - placement.y[anchor])
    )
    return std[np.argsort(d)[:min(count, std.size)]]


def region_scenario(
    netlist: Netlist,
    placement: Placement,
    count: int = 50,
    offset_fraction: float = 0.15,
    density_headroom: float = 4.0,
    seed: int = 0,
    name: str = "scenario_region",
) -> tuple[Netlist, Rect, np.ndarray]:
    """A hard-region scenario like Figure 4's.

    Picks ``count`` clustered cells from the given placement and builds
    a region rectangle offset ``offset_fraction`` of the core away from
    their centroid, sized for ``density_headroom`` times their area.
    Returns ``(netlist-with-region, region rect, constrained cells)``;
    the input netlist is not mutated (a shallow copy carries the extra
    region).
    """
    cells = clustered_cells(netlist, placement, count=count, seed=seed)
    bounds = netlist.core.bounds
    cx = float(placement.x[cells].mean())
    cy = float(placement.y[cells].mean())
    off_x = offset_fraction * bounds.width * (1 if cx < bounds.center[0] else -1)
    off_y = offset_fraction * bounds.height * (1 if cy < bounds.center[1] else -1)
    tx = float(np.clip(cx + off_x, bounds.xlo, bounds.xhi))
    ty = float(np.clip(cy + off_y, bounds.ylo, bounds.yhi))
    area = float(netlist.areas[cells].sum()) * density_headroom
    half = max(0.5 * np.sqrt(area), 2.0 * netlist.core.row_height)
    rect = Rect(
        max(tx - half, bounds.xlo), max(ty - half, bounds.ylo),
        min(tx + half, bounds.xhi), min(ty + half, bounds.yhi),
    )
    constrained = copy.copy(netlist)
    constrained.regions = list(netlist.regions) + [
        PlacementRegion(name, rect, cells)
    ]
    return constrained, rect, cells


def weighted_paths_scenario(
    netlist: Netlist,
    placement: Placement,
    factor: float,
    num_paths: int = 3,
    max_cells: int = 7,
) -> tuple[Netlist, list[list[int]]]:
    """A critical-path net-weighting scenario like Figure 5's.

    Runs STA on the placement, extracts ``num_paths`` short critical
    paths and returns a shallow netlist copy whose path nets are
    weighted by ``factor``, plus the paths (as net-index lists).
    """
    from ..experiments.fig5 import find_critical_paths
    from ..timing import TimingGraph, weight_paths

    graph = TimingGraph(netlist)
    paths = find_critical_paths(netlist, placement, graph,
                                count=num_paths, max_cells=max_cells)
    if not paths:
        raise ValueError("no critical paths found; design too small")
    weighted = copy.copy(netlist)
    weighted.net_weights = weight_paths(netlist, paths, factor)
    return weighted, paths
