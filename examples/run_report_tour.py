"""Flight-recorder tour: deep probes, the convergence doctor, an HTML
run report and the run registry with diffing.

Runs the same design twice — once healthy, once with the
``lambda_mode="double"`` ablation (which saturates the growth cap by
construction) — and walks through:

1. the health probes a metrics-enabled run records for free,
2. ``repro.diagnostics.diagnose`` turning trajectories into findings,
3. ``repro.report`` rendering a single self-contained HTML file,
4. ``repro.runs`` archiving both runs and diffing them.

    python examples/run_report_tour.py [suite] [scale]
"""

import sys

from repro import load_suite, telemetry
from repro.core import ComPLxConfig, ComPLxPlacer
from repro.diagnostics import diagnose
from repro.legalize import abacus_legalize
from repro.projection import DensityGrid, default_grid_shape
from repro.report import (
    build_report,
    record_stage_totals,
    render_html,
    write_report,
)
from repro.runs import RunRegistry, diff_run_dirs


def run_once(netlist, config):
    """One fully instrumented run: tracer + registry + legalization."""
    with telemetry.tracing() as tracer, telemetry.metrics() as registry:
        result = ComPLxPlacer(netlist, config).place()
        registry.merge(result.metrics)
        abacus_legalize(netlist, result.upper)
    record_stage_totals(registry, tracer)
    registry.meta["netlist"] = netlist.name
    registry.meta["lambda_mode"] = config.lambda_mode
    return result, registry, tracer


def main() -> None:
    suite = sys.argv[1] if len(sys.argv) > 1 else "adaptec1_s"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1
    netlist = load_suite(suite, scale=scale).netlist
    print(f"Loaded {netlist}")

    # ------------------------------------------------------------------
    # 1. A healthy run.  The probes ride along with the metrics
    #    registry: CG residual histories, per-projection density
    #    snapshots, a displacement histogram, per-stage memory gauges.
    # ------------------------------------------------------------------
    healthy_config = ComPLxConfig(seed=0)
    result, registry, tracer = run_once(netlist, healthy_config)
    overflow = registry.series("projection_overflow_percent")
    print(f"\nProbes: {len(overflow)} projection snapshots, "
          f"final overflow {overflow.last:.1f}%; "
          f"{registry.counters().get('cg_solves', 0):.0f} CG solves; "
          f"peak RSS {registry.gauges()['mem_global_place_peak_rss_mb']:.0f}"
          " MiB in global_place")

    # ------------------------------------------------------------------
    # 2. The doctor.  Healthy trajectories produce no findings.
    # ------------------------------------------------------------------
    diagnosis = diagnose(registry, config=healthy_config)
    print(f"\n{diagnosis.render()}")

    # ------------------------------------------------------------------
    # 3. The report: one self-contained HTML file, charts as inline SVG.
    # ------------------------------------------------------------------
    grid_bins = default_grid_shape(netlist.num_movable)
    grid = DensityGrid(netlist, grid_bins, grid_bins)
    density = grid.utilization(grid.usage(result.upper), healthy_config.gamma)
    report = build_report(registry, title=f"{netlist.name} (healthy)",
                          diagnosis=diagnosis, density=density)
    write_report("run_report_tour_healthy.html", report)
    print("\nWrote run_report_tour_healthy.html "
          "(open in any browser, no network needed)")

    # ------------------------------------------------------------------
    # 4. Archive it, then run the pathological ablation and archive
    #    that too: lambda_mode="double" doubles lambda every iteration,
    #    which the doctor flags as D1 lambda-cap-saturation.
    # ------------------------------------------------------------------
    runs = RunRegistry("run_report_tour_runs")
    runs.capture(registry, name=netlist.name,
                 report_html=render_html(report), tracer=tracer)

    double_config = ComPLxConfig(seed=0, lambda_mode="double")
    _, bad_registry, bad_tracer = run_once(netlist, double_config)
    bad_diagnosis = diagnose(bad_registry, config=double_config)
    print(f"\nAblation run (lambda_mode='double'):")
    print(bad_diagnosis.render())
    bad_report = build_report(bad_registry,
                              title=f"{netlist.name} (double ablation)",
                              diagnosis=bad_diagnosis)
    runs.capture(bad_registry, name=netlist.name,
                 report_html=render_html(bad_report), tracer=bad_tracer)

    # ------------------------------------------------------------------
    # 5. Diff the two archived runs: series finals, stage seconds,
    #    counters, meta -- "what changed" in one command.
    # ------------------------------------------------------------------
    ids = runs.run_ids()
    print(f"\nRegistry now holds: {', '.join(ids)}")
    diff = diff_run_dirs("run_report_tour_runs", ids[0], ids[1])
    print(diff.render())
    print("\nSame thing offline: python -m repro.runs diff "
          f"{ids[0]} {ids[1]} --runs-dir run_report_tour_runs")


if __name__ == "__main__":
    main()
