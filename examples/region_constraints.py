"""Region constraints on a hand-built netlist (paper Section S5).

Builds a small design from scratch with :class:`NetlistBuilder` — a
datapath cluster, a control cluster and I/O pads — then constrains the
control cluster to a region and places with ComPLx.  The constraint is
enforced *inside the feasibility projection* (cells snap to the region
every iteration), not with fake nets.

    python examples/region_constraints.py
"""

import numpy as np

from repro import CellKind, ComPLxConfig, NetlistBuilder, Rect, hpwl
from repro.core import ComPLxPlacer
from repro.netlist import CoreArea
from repro.projection.regions import region_violation_distance


def build_design() -> tuple:
    core = CoreArea.uniform(Rect(0, 0, 60, 60), row_height=1.0)
    b = NetlistBuilder("regions_demo", core=core)

    rng = np.random.default_rng(7)
    # Datapath: a chain of 120 cells with ripple connectivity.
    for i in range(120):
        b.add_cell(f"dp{i}", width=float(rng.integers(2, 6)), height=1.0)
    for i in range(119):
        b.add_net(f"dp_n{i}", [(f"dp{i}", 0.0, 0.0), (f"dp{i+1}", 0.0, 0.0)])

    # Control: 40 cells, densely cross-connected.
    for i in range(40):
        b.add_cell(f"ctl{i}", width=float(rng.integers(1, 4)), height=1.0)
    for i in range(60):
        j, k = rng.integers(0, 40, size=2)
        if j != k:
            b.add_net(f"ctl_n{i}", [(f"ctl{j}", 0.0, 0.0),
                                    (f"ctl{k}", 0.0, 0.0)])

    # Control talks to the datapath.
    for i in range(30):
        j = int(rng.integers(0, 40))
        k = int(rng.integers(0, 120))
        b.add_net(f"mix_n{i}", [(f"ctl{j}", 0.0, 0.0), (f"dp{k}", 0.0, 0.0)])

    # Pads on two sides.
    for p in range(12):
        b.add_cell(f"pad{p}", 0.0, 0.0, kind=CellKind.TERMINAL,
                   fixed_at=(0.0, 5.0 * p) if p < 6 else (60.0, 5.0 * (p - 6)))
        b.add_net(f"pad_n{p}", [(f"pad{p}", 0.0, 0.0),
                                (f"dp{p * 9 % 120}", 0.0, 0.0)])

    # Constrain the control cluster to the top-right corner.
    region = Rect(42.0, 42.0, 58.0, 58.0)
    b.add_region("control_region", region, [f"ctl{i}" for i in range(40)])
    return b.build(), region


def main() -> None:
    netlist, region = build_design()
    print(f"{netlist}")
    print(f"Hard region for 40 control cells: {region}")

    placer = ComPLxPlacer(netlist, ComPLxConfig())
    result = placer.place()
    violation = region_violation_distance(netlist, result.upper)
    ctl = [netlist.cell_index(f"ctl{i}") for i in range(40)]
    inside = sum(
        1 for i in ctl
        if region.contains_point(result.upper.x[i], result.upper.y[i], tol=1e-6)
    )
    print(f"Placed in {result.iterations} iterations; "
          f"HPWL {hpwl(netlist, result.upper):.1f}")
    print(f"Control cells inside region: {inside}/40 "
          f"(violation distance {violation:.2f})")


if __name__ == "__main__":
    main()
