"""Quickstart: place a synthetic ISPD-2005-style design with ComPLx.

Runs the full paper flow — global placement (primal-dual Lagrange
iterations), legalization and detailed placement — and reports the
metrics the paper's tables use.

    python examples/quickstart.py [suite] [scale]
"""

import sys

from repro import check_legal, hpwl, load_suite, place
from repro.analysis import analyze_placement
from repro.detailed import DetailedPlacer
from repro.legalize import tetris_legalize
from repro.viz import placement_svg


def main() -> None:
    suite = sys.argv[1] if len(sys.argv) > 1 else "adaptec1_s"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2

    print(f"Loading {suite} (scale {scale}) ...")
    design = load_suite(suite, scale=scale)
    netlist = design.netlist
    print(f"  {netlist}")

    print("Global placement (ComPLx default configuration) ...")
    result = place(netlist)
    print(f"  {result.history.summary()}")
    print(f"  lower-bound HPWL: {hpwl(netlist, result.lower):.1f}")
    print(f"  feasible    HPWL: {hpwl(netlist, result.upper):.1f}")

    print("Legalization + detailed placement (FastPlace-DP role) ...")
    dp = DetailedPlacer(netlist, legalizer=tetris_legalize)
    legal = dp.place(result.upper)
    report = check_legal(netlist, legal)
    print(f"  legal: {report.legal} ({report.summary()})")
    print(f"  legal HPWL: {hpwl(netlist, legal):.1f} "
          f"(DP improved {dp.last_report.improvement * 100:.1f}%)")

    print(analyze_placement(netlist, legal).render())

    placement_svg(netlist, legal, "quickstart_placement.svg",
                  title=f"{suite} placed by ComPLx")
    print("Wrote quickstart_placement.svg")


if __name__ == "__main__":
    main()
