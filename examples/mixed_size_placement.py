"""Mixed-size placement: movable macros via shredding (paper Section 5).

Places an ISPD-2006-style design with movable macros under a target
density, showing the mixed-size machinery: macro shredding inside the
feasibility projection, per-macro lambda, and the scaled-HPWL contest
metric.  Compares against turning the per-macro lambda off.

    python examples/mixed_size_placement.py [suite] [scale]
"""

import sys

import numpy as np

from repro import ComPLxConfig, hpwl, load_suite
from repro.core import ComPLxPlacer
from repro.detailed import DetailedPlacer
from repro.legalize import tetris_legalize
from repro.metrics import scaled_hpwl
from repro.workloads import suite_entry


def run(netlist, gamma: float, per_macro_lambda: bool) -> dict:
    config = ComPLxConfig(gamma=gamma, per_macro_lambda=per_macro_lambda)
    placer = ComPLxPlacer(netlist, config)
    result = placer.place()
    dp = DetailedPlacer(netlist, legalizer=tetris_legalize)
    legal = dp.place(result.upper)
    metric = scaled_hpwl(netlist, legal, gamma)
    macros = np.flatnonzero(netlist.movable_macros)
    return {
        "iterations": result.iterations,
        "hpwl": hpwl(netlist, legal),
        "scaled": metric.scaled,
        "overflow": metric.overflow_percent,
        "macro_positions": [
            (netlist.cell_names[m], float(legal.x[m]), float(legal.y[m]))
            for m in macros
        ],
    }


def main() -> None:
    suite = sys.argv[1] if len(sys.argv) > 1 else "newblue1_s"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    gamma = suite_entry(suite).target_density

    design = load_suite(suite, scale=scale)
    netlist = design.netlist
    n_macros = int(netlist.movable_macros.sum())
    print(f"{netlist} with {n_macros} movable macros, target density "
          f"gamma={gamma}")

    for per_macro in (True, False):
        tag = "per-macro lambda ON " if per_macro else "per-macro lambda OFF"
        out = run(netlist, gamma, per_macro)
        print(f"[{tag}] iters={out['iterations']:3d} "
              f"HPWL={out['hpwl']:9.1f} scaled={out['scaled']:9.1f} "
              f"overflow={out['overflow']:.2f}%")
        for name, x, y in out["macro_positions"]:
            print(f"    {name} at ({x:.1f}, {y:.1f})")


if __name__ == "__main__":
    main()
