"""Telemetry tour: trace a placement run, inspect the metrics, and
write artifacts you can open in a trace viewer.

Walks through the three layers of ``repro.telemetry``:

1. a ``Tracer`` capturing nested stage spans (wall + CPU time),
2. a ``MetricsRegistry`` capturing counters/gauges and the
   per-iteration λ/Π/Φ trajectories,
3. export — span JSONL, a Chrome-trace JSON (open in
   ``chrome://tracing`` or https://ui.perfetto.dev), a metrics CSV.

    python examples/telemetry_tour.py [suite] [scale]
"""

import sys

from repro import hpwl, load_suite, telemetry
from repro.core import ComPLxConfig, ComPLxPlacer
from repro.core.convergence import trajectory_summary
from repro.legalize import abacus_legalize


def main() -> None:
    suite = sys.argv[1] if len(sys.argv) > 1 else "adaptec1_s"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1

    design = load_suite(suite, scale=scale)
    netlist = design.netlist
    print(f"Loaded {netlist}")

    # ------------------------------------------------------------------
    # 1. Run the placer under a tracer + metrics registry.  Without
    #    these context managers every telemetry.span(...) in the placer
    #    returns a shared no-op singleton — zero overhead when disabled.
    # ------------------------------------------------------------------
    with telemetry.tracing() as tracer, telemetry.metrics() as registry:
        placer = ComPLxPlacer(netlist, ComPLxConfig(seed=0))
        result = placer.place()
        legal = abacus_legalize(netlist, result.upper)

    # ------------------------------------------------------------------
    # 2. Stage timings: tracer.aggregate() folds every span into
    #    per-stage statistics (inclusive wall time).
    # ------------------------------------------------------------------
    print("\nStage timings (inclusive):")
    stats = tracer.aggregate()
    width = max(len(name) for name in stats)
    for name in sorted(stats, key=lambda n: -stats[n].total_s):
        st = stats[name]
        print(f"  {name:<{width}}  {st.total_s * 1e3:9.2f} ms "
              f"over {st.count} span(s)")

    # ------------------------------------------------------------------
    # 3. Metrics: counters/gauges from the solvers and legalizer, plus
    #    the per-iteration trajectories on result.metrics.
    # ------------------------------------------------------------------
    print("\nCounters:")
    for name, value in sorted(registry.counters().items()):
        print(f"  {name} = {value:g}")
    print("Gauges:")
    for name, value in sorted(registry.gauges().items()):
        print(f"  {name} = {value:g}")

    traj = result.metrics
    lam = traj.series("lam").as_array()
    pi = traj.series("pi").as_array()
    print(f"\nTrajectories over {result.iterations} iterations:")
    print(f"  lambda: {lam[0]:.4f} -> {lam[-1]:.4f}")
    print(f"  Pi:     {pi[0]:.1f} -> {pi[-1]:.1f}")
    print(f"  summary: {trajectory_summary(traj)}")

    # ------------------------------------------------------------------
    # 4. Artifacts.
    # ------------------------------------------------------------------
    tracer.write_chrome_trace("telemetry_tour_trace.json")
    tracer.write_jsonl("telemetry_tour_spans.jsonl")
    traj.write_csv("telemetry_tour_series.csv")
    print("\nWrote telemetry_tour_trace.json "
          "(open in chrome://tracing or ui.perfetto.dev),")
    print("      telemetry_tour_spans.jsonl, telemetry_tour_series.csv")
    print(f"\nGlobal HPWL {hpwl(netlist, result.upper):.1f}, "
          f"legalized HPWL {hpwl(netlist, legal):.1f} — "
          f"`python -m repro.bench` turns these into pinned baselines.")


if __name__ == "__main__":
    main()
