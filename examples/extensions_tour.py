"""Tour of the optional extensions: multilevel and routability-driven
placement.

* **Multilevel** (mPL-style): cluster the netlist by connectivity, place
  the coarse problem, uncluster and refine warm-started — the classic
  speed lever for very large designs.
* **Routability** (SimPLR special case, paper Section 5): estimate
  congestion with RUDY on the placed design, inflate cells in hot bins
  inside the feasibility projection, and re-place.

    python examples/extensions_tour.py [suite] [scale]
"""

import sys
import time

from repro import hpwl, load_suite
from repro.core import ComPLxConfig, ComPLxPlacer
from repro.multilevel import cluster_netlist, multilevel_place
from repro.projection import DensityGrid
from repro.routability import routability_place, rudy_map


def main() -> None:
    suite = sys.argv[1] if len(sys.argv) > 1 else "bigblue1_s"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    design = load_suite(suite, scale=scale)
    netlist = design.netlist
    print(f"{netlist}")

    # ----- baseline flat run --------------------------------------
    t0 = time.perf_counter()
    flat = ComPLxPlacer(netlist, ComPLxConfig()).place()
    flat_time = time.perf_counter() - t0
    print(f"flat ComPLx:   {flat_time:5.1f}s, "
          f"HPWL {hpwl(netlist, flat.upper):9.1f}, "
          f"{flat.iterations} iterations")

    # ----- multilevel --------------------------------------------
    clustering = cluster_netlist(netlist)
    print(f"clustering: {netlist.num_movable} movables -> "
          f"{clustering.clustered.num_movable} clusters")
    t0 = time.perf_counter()
    ml = multilevel_place(netlist, fine_iterations=25)
    ml_time = time.perf_counter() - t0
    print(f"multilevel:    {ml_time:5.1f}s, "
          f"HPWL {hpwl(netlist, ml.upper):9.1f}, "
          f"levels {[lvl['cells'] for lvl in ml.levels]}")

    # ----- routability-driven ------------------------------------
    grid = DensityGrid(netlist, 12, 12)
    before = rudy_map(netlist, flat.upper, grid)
    t0 = time.perf_counter()
    routed = routability_place(netlist, max_rounds=3,
                               congestion_threshold=1.05)
    rt_time = time.perf_counter() - t0
    after = rudy_map(netlist, routed.upper, grid,
                     supply_per_area=before.supply / (grid.bin_w * grid.bin_h))
    print(f"routability:   {rt_time:5.1f}s, "
          f"HPWL {hpwl(netlist, routed.upper):9.1f}, "
          f"max congestion {before.max_congestion:.2f} -> "
          f"{after.max_congestion:.2f} "
          f"({len(routed.rounds)} rounds)")


if __name__ == "__main__":
    main()
