"""Bookshelf I/O: export a design, read it back, and place from file.

Shows the ISPD Bookshelf (.aux/.nodes/.nets/.wts/.pl/.scl) reader and
writer — the interchange format the real contest benchmarks use — so
users with access to the original ISPD 2005/2006 files can run this
reproduction on them directly:

    from repro.netlist.bookshelf import read_aux
    netlist, initial = read_aux("adaptec1.aux")

    python examples/bookshelf_roundtrip.py
"""

import os
import tempfile

from repro import hpwl, load_suite, place
from repro.netlist.bookshelf import read_aux, write_aux


def main() -> None:
    design = load_suite("newblue1_s", scale=0.1)
    netlist = design.netlist
    placed = place(netlist)
    print(f"Generated and placed {netlist}")
    print(f"  feasible HPWL: {hpwl(netlist, placed.upper):.1f}")

    with tempfile.TemporaryDirectory() as tmp:
        aux = write_aux(netlist, placed.upper, tmp)
        files = sorted(os.listdir(tmp))
        print(f"Wrote Bookshelf file set: {files}")

        reread, initial = read_aux(aux)
        print(f"Read back: {reread}")
        print(f"  HPWL from .pl file: {hpwl(reread, initial):.1f} "
              "(matches the exported placement)")

        # Re-place the round-tripped netlist from the stored positions.
        result = place(reread)
        print(f"  re-placed HPWL: {hpwl(reread, result.upper):.1f} "
              f"in {result.iterations} iterations")


if __name__ == "__main__":
    main()
