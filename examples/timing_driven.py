"""Timing-driven placement loop (paper Section 5, Formula 13).

Demonstrates the two timing levers ComPLx exposes:

1. net weights in Phi from slack-based weighting (Section 5 cites the
   convergent schemes of [8]),
2. the criticality-weighted penalty term of Formula 13: cells on
   critical paths get larger gamma_i so the projection displaces them
   less.

The loop alternates placement and static timing analysis, tightening
both levers, and reports the worst arrival time and HPWL per round.

    python examples/timing_driven.py [suite] [scale]
"""

import copy
import sys

from repro import ComPLxConfig, hpwl, load_suite
from repro.core import ComPLxPlacer
from repro.timing import (
    TimingGraph,
    criticality_vector,
    slack_based_weights,
)


def main() -> None:
    suite = sys.argv[1] if len(sys.argv) > 1 else "bigblue1_s"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15
    rounds = 3

    design = load_suite(suite, scale=scale)
    netlist = design.netlist
    graph = TimingGraph(netlist)
    print(f"{netlist}")

    # Round 0: timing-oblivious placement sets the clock target.
    result = ComPLxPlacer(netlist, ComPLxConfig()).place()
    timing = graph.analyze(result.upper)
    clock = 0.9 * timing.max_arrival  # ask for a 10% speedup
    print(f"round 0: HPWL {hpwl(netlist, result.upper):9.1f}  "
          f"worst arrival {timing.max_arrival:8.2f}  "
          f"(clock target {clock:.2f})")

    # Track the endpoint that was worst initially: whatever the global
    # worst path does round to round (criticality is whack-a-mole on a
    # small design), the *targeted* endpoint should get faster.
    import numpy as np
    target_endpoint = int(np.argmax(timing.arrival))

    # ---- power-driven variant (activity factors, Section 5) --------
    from repro.timing import (
        estimate_dynamic_wire_power,
        power_weights,
        propagate_activities,
    )
    activity = propagate_activities(netlist, graph, seed=1)
    power_nl = copy.copy(netlist)
    power_nl.net_weights = power_weights(netlist, graph, activity,
                                         sensitivity=3.0)
    power_run = ComPLxPlacer(power_nl, ComPLxConfig()).place()
    p_before = estimate_dynamic_wire_power(netlist, result.upper, graph,
                                           activity)
    p_after = estimate_dynamic_wire_power(netlist, power_run.upper, graph,
                                          activity)
    print(f"power-driven: dynamic wire power {p_before:.0f} -> {p_after:.0f} "
          f"({(p_after / p_before - 1) * 100:+.1f}%), "
          f"HPWL {hpwl(netlist, power_run.upper):.1f}")

    weighted = copy.copy(netlist)
    criticality = None
    for r in range(1, rounds + 1):
        timing = graph.analyze(result.upper, clock_period=clock)
        weighted.net_weights = slack_based_weights(
            weighted, timing, graph, base=netlist.net_weights,
        )
        criticality = criticality_vector(netlist, timing, delta=0.5,
                                         base=criticality)
        placer = ComPLxPlacer(weighted, ComPLxConfig(),
                              criticality=criticality)
        result = placer.place(initial=result.lower)
        check = graph.analyze(result.upper)
        print(f"round {r}: HPWL {hpwl(netlist, result.upper):9.1f}  "
              f"worst arrival {check.max_arrival:8.2f}  "
              f"targeted endpoint arrival {check.arrival[target_endpoint]:8.2f}  "
              f"critical cells {timing.critical_cells.size}")


if __name__ == "__main__":
    main()
