"""Client walkthrough for the placement service (`python -m repro.serve`).

Boots a service in-process on an ephemeral port (so the example is
self-contained), then exercises the full client protocol over plain
HTTP — submit, stream progress events, poll to completion, fetch the
result and report, and show what backpressure looks like:

    python examples/serve_client.py

Point ``BASE`` at an already-running server to use it as a template
for a real client; everything below the service boot is stdlib-only
HTTP/JSON.
"""

import json
import time
import urllib.error
import urllib.request

from repro.serve import PlacementService, ServeConfig

TENANT = "example"


def call(method: str, url: str, payload=None):
    """One API call; returns (status, headers, parsed body)."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"X-Tenant": TENANT, "Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            raw, headers, status = (response.read(),
                                    dict(response.headers),
                                    response.status)
    except urllib.error.HTTPError as exc:
        raw, headers, status = exc.read(), dict(exc.headers), exc.code
    if headers.get("Content-Type", "").startswith("application/json"):
        return status, headers, json.loads(raw or b"{}")
    return status, headers, raw.decode()


def main() -> None:
    # Self-contained: boot the service in-process.  For a real
    # deployment this is `python -m repro.serve --port 8760` instead.
    service = PlacementService(ServeConfig(
        port=0, workers=2, queue_capacity=8,
        registry_root="serve-example-runs",
        # Generous rate limit so the saturation demo below hits the
        # bounded queue, not the per-tenant token bucket.
        tenant_rate=100.0, tenant_burst=100,
    )).start()
    host, port = service.address
    base = f"http://{host}:{port}"
    print(f"service up at {base}")

    try:
        # --- submit ---------------------------------------------------
        status, _, job = call("POST", f"{base}/v1/jobs", {
            "name": "walkthrough",
            "priority": 3,
            "workload": {"kind": "synthetic", "num_cells": 300, "seed": 7},
            "config": {"max_iterations": 40, "seed": 1},
            "legalizer": "abacus",
            "deadline_seconds": 60,
        })
        print(f"POST /v1/jobs -> {status}: "
              f"{job['job_id']} ({job['state']})")

        # --- stream progress events while polling ---------------------
        job_id, cursor = job["job_id"], 0
        while True:
            status, _, chunk = call(
                "GET", f"{base}/v1/jobs/{job_id}/events?since={cursor}")
            for event in chunk["events"]:
                if event.get("stage") == "iteration":
                    print(f"  iter {event['iteration']:>3}  "
                          f"HPWL={event['hpwl_upper']:.0f}")
                else:
                    print(f"  {event.get('stage')}")
            cursor = chunk["next_since"]
            if chunk["done"]:
                break
            time.sleep(0.2)

        # --- result + report ------------------------------------------
        status, _, outcome = call("GET",
                                  f"{base}/v1/jobs/{job_id}/result")
        result = outcome["result"]
        print(f"result: {outcome['status']}, "
              f"HPWL {result['hpwl_legal']:.0f} "
              f"({result['iterations']} iterations, "
              f"stop={result['stop_reason']}, "
              f"legalizer={result['legalizer']})")
        print(f"archived at {outcome['job']['run_dir']}")
        _, _, html = call("GET", f"{base}/v1/jobs/{job_id}/report")
        print(f"report: {len(html)} bytes of standalone HTML")

        # --- what backpressure looks like -----------------------------
        # Saturate the queue; the first rejected submission shows the
        # 429 + Retry-After contract a well-behaved client obeys.
        print("saturating the queue ...")
        for _ in range(12):
            status, headers, body = call("POST", f"{base}/v1/jobs", {
                "name": "filler",
                "workload": {"kind": "synthetic", "num_cells": 2000,
                             "seed": 1},
                "config": {"max_iterations": 300},
            })
            if status == 429:
                print(f"  429: {body['error']} "
                      f"(Retry-After: {headers['Retry-After']}s)")
                break
        _, _, metrics = call("GET", f"{base}/metricz")
        counters = {c["name"]: c["value"] for c in metrics["counters"]}
        print(f"service counters: {counters}")
    finally:
        # drain=False: don't wait for the filler jobs on the way out.
        service.stop(drain=False, timeout=10.0)
        print("service stopped")


if __name__ == "__main__":
    main()
